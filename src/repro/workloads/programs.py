"""The twelve named benchmark kernels (Table 2 / Figures 7–8 workloads).

The paper profiles the hottest function of a subset of SPEC CPU2006 and
Phoronix PTS benchmarks.  Those sources are proprietary or too large to
ship, so each benchmark is represented here by a hand-written MiniC kernel
that mimics the *kind* of hot loop the original program spends its time
in: block sorting and run-length encoding for bzip2, sum-of-absolute-
differences for h264ref, a dynamic-programming recurrence for hmmer,
n-body style arithmetic for namd, a hash/dispatch loop for perlbench,
board scanning for sjeng, a simplex-style pivot search for soplex, and so
on.  What matters for the evaluation is that the kernels exercise loops,
nested control flow, memory traffic and redundant arithmetic so the
OSR-aware passes have real work to do; the substitution is documented in
DESIGN.md.

``benchmark_functions()`` compiles every kernel to its f_base form (SSA
with debug metadata), and ``benchmark_arguments`` provides input values
(plus array initialization) so tests and benchmarks can execute them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..frontend import compile_function, compile_program
from ..ir.function import Function, Module
from ..ir.interp import Memory

__all__ = [
    "BENCHMARK_NAMES",
    "BENCHMARK_SOURCES",
    "LOOP_KERNEL_NAMES",
    "STRAIGHT_LINE_NAMES",
    "STRAIGHT_LINE_SOURCES",
    "CALL_KERNEL_NAMES",
    "CALL_KERNEL_SOURCES",
    "CALL_KERNEL_ENTRIES",
    "benchmark_source",
    "benchmark_function",
    "benchmark_functions",
    "benchmark_arguments",
    "straightline_function",
    "straightline_arguments",
    "call_kernel_module",
    "call_kernel_arguments",
]

#: The benchmarks of Table 2, in the paper's order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "bzip2",
    "h264ref",
    "hmmer",
    "namd",
    "perlbench",
    "sjeng",
    "soplex",
    "bullet",
    "dcraw",
    "ffmpeg",
    "fhourstones",
    "vp8",
)


BENCHMARK_SOURCES: Dict[str, str] = {
    # bzip2: block sort + run-length accumulation over a buffer.
    "bzip2": """
func bzip2(buf, n) {
  var freq[16];
  var i = 0;
  while (i < 16) { freq[i] = 0; i = i + 1; }
  var run = 0;
  var prev = 0 - 1;
  var total = 0;
  for (i = 0; i < n; i = i + 1) {
    var b = buf[i] % 16;
    var slot = b * 1;
    freq[slot] = freq[slot] + 1;
    if (b == prev) {
      run = run + 1;
      if (run >= 4) { total = total + run * 2; run = 0; }
    } else {
      run = 1;
      prev = b;
    }
    var weight = n * 3 + 7;
    total = total + b * weight;
  }
  var acc = 0;
  for (i = 0; i < 16; i = i + 1) {
    var w = n * 3 + 7;
    acc = acc + freq[i] * w + i;
  }
  return total + acc;
}
""",
    # h264ref: sum of absolute differences between two macroblock rows.
    "h264ref": """
func h264ref(cur, ref, n) {
  var sad = 0;
  var bias = n * 2 + 1;
  var i = 0;
  while (i < n) {
    var a = cur[i];
    var b = ref[i];
    var d = a - b;
    if (d < 0) { d = 0 - d; }
    var scale = n * 2 + 1;
    sad = sad + d * scale;
    if (sad > 100000) { sad = sad - bias; }
    i = i + 1;
  }
  return sad;
}
""",
    # hmmer: Viterbi-like dynamic programming recurrence over two arrays.
    "hmmer": """
func hmmer(emit, trans, n) {
  var match[32];
  var insert[32];
  var i = 0;
  while (i < 32) { match[i] = 0; insert[i] = 0; i = i + 1; }
  var best = 0;
  for (i = 1; i < n; i = i + 1) {
    var k = i % 32;
    var prev = (i - 1) % 32;
    var e = emit[i];
    var t = trans[i];
    var viaMatch = match[prev] + t;
    var viaInsert = insert[prev] + t * 2;
    var score = 0;
    if (viaMatch > viaInsert) { score = viaMatch + e; } else { score = viaInsert + e; }
    match[k] = score;
    insert[k] = viaMatch - e;
    if (score > best) { best = score; }
  }
  return best;
}
""",
    # namd: pairwise force accumulation with strength-reduced indexing.
    "namd": """
func namd(px, py, n) {
  var fx = 0;
  var fy = 0;
  var cutoff = n * n + 3;
  var i = 0;
  while (i < n) {
    var j = i + 1;
    while (j < n) {
      var dx = px[i] - px[j];
      var dy = py[i] - py[j];
      var r2 = dx * dx + dy * dy;
      var c = n * n + 3;
      if (r2 < c) {
        var inv = c - r2;
        fx = fx + dx * inv;
        fy = fy + dy * inv;
      } else {
        fx = fx - 1;
      }
      j = j + 1;
    }
    i = i + 1;
  }
  return fx * 3 + fy;
}
""",
    # perlbench: hash-and-dispatch interpreter-style loop.
    "perlbench": """
func perlbench(ops, n) {
  var acc = 0;
  var seed = 1469598103;
  var i = 0;
  while (i < n) {
    var op = ops[i];
    var h = (seed ^ op) * 16777619;
    h = h % 1024;
    if (h < 0) { h = 0 - h; }
    var kind = op % 4;
    if (kind == 0) {
      acc = acc + h;
    } else { if (kind == 1) {
      acc = acc - (h >> 2);
    } else { if (kind == 2) {
      acc = acc + h * 3;
    } else {
      acc = acc ^ h;
    } } }
    var norm = n * 5 + 11;
    acc = acc + norm;
    i = i + 1;
  }
  return acc;
}
""",
    # sjeng: board scan with attack counting.
    "sjeng": """
func sjeng(board, n) {
  var score = 0;
  var mobility = 0;
  var center = n / 2;
  var i = 0;
  while (i < n) {
    var piece = board[i];
    var dist = i - center;
    if (dist < 0) { dist = 0 - dist; }
    var c = n / 2;
    if (piece > 0) {
      score = score + piece * (8 - dist);
      mobility = mobility + piece % 3;
    } else {
      if (piece < 0) {
        score = score - (0 - piece) * (8 - dist);
      } else {
        mobility = mobility + c % 2;
      }
    }
    i = i + 1;
  }
  return score * 4 + mobility;
}
""",
    # soplex: pick the entering column by best reduced cost.
    "soplex": """
func soplex(cost, n) {
  var best = 0;
  var bestIndex = 0 - 1;
  var scale = n + 13;
  var i = 0;
  while (i < n) {
    var c = cost[i];
    var reduced = c * scale - i;
    if (reduced < best) {
      best = reduced;
      bestIndex = i;
    }
    i = i + 1;
  }
  return bestIndex * 1000 + best;
}
""",
    # bullet: AABB overlap tests in a broadphase sweep.
    "bullet": """
func bullet(mins, maxs, n) {
  var pairs = 0;
  var margin = n % 7 + 1;
  var i = 0;
  while (i < n) {
    var j = i + 1;
    while (j < n) {
      var m = n % 7 + 1;
      var lo = mins[i] - m;
      var hi = maxs[i] + m;
      var lo2 = mins[j];
      var hi2 = maxs[j];
      var overlap = 0;
      if (lo <= hi2) { if (lo2 <= hi) { overlap = 1; } }
      if (overlap == 1) {
        pairs = pairs + 1;
      }
      j = j + 1;
    }
    i = i + 1;
  }
  return pairs * margin;
}
""",
    # dcraw: demosaicing-like weighted neighbour interpolation.
    "dcraw": """
func dcraw(raw, n) {
  var out = 0;
  var gain = n * 2 + 5;
  var i = 2;
  while (i < n - 2) {
    var left = raw[i - 1];
    var right = raw[i + 1];
    var here = raw[i];
    var g = n * 2 + 5;
    var interp = (left + right + here * 2) / 4;
    var err = here - interp;
    if (err < 0) { err = 0 - err; }
    out = out + interp * g + err;
    i = i + 1;
  }
  return out;
}
""",
    # ffmpeg: IDCT-like butterfly with saturation and constant tables.
    "ffmpeg": """
func ffmpeg(block, n) {
  var sum = 0;
  var round = 32;
  var shift = 6;
  var i = 0;
  while (i < n) {
    var v = block[i];
    var even = v + block[(i + 2) % n];
    var odd = v - block[(i + 1) % n];
    var t0 = (even * 64 + round) >> shift;
    var t1 = (odd * 83 + round) >> shift;
    var clipped = t0 + t1;
    if (clipped > 255) { clipped = 255; }
    if (clipped < 0 - 256) { clipped = 0 - 256; }
    if (1 == 0) { clipped = clipped * 9999; }
    sum = sum + clipped;
    i = i + 1;
  }
  return sum;
}
""",
    # fhourstones: connect-4 transposition-table probing.
    "fhourstones": """
func fhourstones(history, n) {
  var hash = 2166136261;
  var hits = 0;
  var probes = 0;
  var i = 0;
  while (i < n) {
    var move = history[i];
    hash = (hash ^ move) * 16777619;
    var slot = hash % 8192;
    if (slot < 0) { slot = 0 - slot; }
    probes = probes + 1;
    var tag = slot % 64;
    if (tag == move % 64) {
      hits = hits + 1;
    } else {
      var penalty = n % 5 + 1;
      hits = hits - penalty % 2;
    }
    i = i + 1;
  }
  return hits * 100000 / (probes + 1);
}
""",
    # vp8: loop-filter style clamping along an edge.
    "vp8": """
func vp8(pixels, n) {
  var filtered = 0;
  var limit = 9;
  var i = 1;
  while (i < n - 1) {
    var p0 = pixels[i - 1];
    var q0 = pixels[i];
    var q1 = pixels[i + 1];
    var delta = (q0 - p0) * 3 + (q1 - q0);
    var lim = 9;
    if (delta > lim) { delta = lim; }
    if (delta < 0 - lim) { delta = 0 - lim; }
    var adjusted = q0 - delta;
    filtered = filtered + adjusted;
    i = i + 1;
  }
  return filtered + limit;
}
""",
}


#: Every Table-2 kernel is dominated by a hot loop — where an
#: OSR-capable compiled tier earns its keep.  The execution-backend
#: benchmark (``benchmarks/record.py``) samples a subset of these for
#: its interpreter-vs-compiled speedup floor.
LOOP_KERNEL_NAMES: Tuple[str, ...] = BENCHMARK_NAMES


#: Straight-line kernels: no loops, pure arithmetic and memory traffic.
#: They isolate per-instruction dispatch overhead (the part of the
#: interpreter a compiled backend eliminates even without loop residency).
STRAIGHT_LINE_SOURCES: Dict[str, str] = {
    # Horner evaluation of two fixed polynomials plus a mixing round —
    # a long dependency chain of register arithmetic.
    "poly8": """
func poly8(x, y) {
  var p = 7;
  p = p * x + 3;
  p = p * x + 11;
  p = p * x + 2;
  p = p * x + 9;
  p = p * x + 5;
  p = p * x + 1;
  p = p * x + 8;
  var q = 3;
  q = q * y + 13;
  q = q * y + 4;
  q = q * y + 6;
  q = q * y + 10;
  var m = (p ^ q) + (p & q) * 3;
  m = (m << 3) - (m >> 2);
  var r = p * 5 - q * 7 + m % 1000003;
  return r;
}
""",
    # Saturating blend of eight memory cells — straight-line loads,
    # compares and clamps (a loop-free slice of the vp8 filter).
    "blend8": """
func blend8(px) {
  var a = px[0] + px[1] * 2;
  var b = px[2] + px[3] * 2;
  var c = px[4] + px[5] * 2;
  var d = px[6] + px[7] * 2;
  var hi = 255;
  if (a > hi) { a = hi; }
  if (b > hi) { b = hi; }
  if (c > hi) { c = hi; }
  if (d > hi) { d = hi; }
  var mixed = (a * 9 + b * 3 + c * 3 + d) / 16;
  px[8] = mixed;
  return mixed * 4 + (a ^ d);
}
""",
}

STRAIGHT_LINE_NAMES: Tuple[str, ...] = tuple(STRAIGHT_LINE_SOURCES)


#: Call-heavy kernels for the interprocedural tier: every one spends its
#: time crossing function boundaries, which the speculative inliner
#: erases.  Each kernel is a *module* (entry function plus callees) so
#: the module-level adaptive runtime can tier every function and route
#: residual calls through itself.
CALL_KERNEL_SOURCES: Dict[str, str] = {
    # A hot loop calling one tiny helper per element — the classic
    # "small-helper" shape where call overhead dominates the work.
    "helper_loop": """
func weigh(v, scale) {
  var w = v * scale + 7;
  if (w < 0) { w = 0 - w; }
  return w;
}
func helper_loop(p, n, scale) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + weigh(p[i], scale);
    i = i + 1;
  }
  return acc;
}
""",
    # Two chained helpers per iteration (nested call expressions), so
    # inlining must splice one body into another's continuation.
    "chain": """
func mix(a, b) {
  return (a ^ b) + (a & b) * 2;
}
func clamp8(v) {
  if (v > 255) { return 255; }
  if (v < 0) { return 0; }
  return v;
}
func chain(p, n) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + clamp8(mix(p[i], acc));
    i = i + 1;
  }
  return acc;
}
""",
    # Self-recursive fib: inlining peels recursion levels, cutting the
    # number of runtime dispatches per call tree.
    "fib": """
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
""",
    # A clamping helper whose saturation branch is cold while warm: the
    # speculative tier turns the branch *inside the inlined body* into a
    # guard, and a violating outlier element fires it mid-loop — the
    # canonical multi-frame deoptimization scenario.
    "clamp_call": """
func clampv(v, limit) {
  if (v > limit) { return limit; }
  return v;
}
func clamp_call(p, n, limit) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + clampv(p[i], limit);
    i = i + 1;
  }
  return acc;
}
""",
}

#: Entry function of each call kernel's module.
CALL_KERNEL_ENTRIES: Dict[str, str] = {
    "helper_loop": "helper_loop",
    "chain": "chain",
    "fib": "fib",
    "clamp_call": "clamp_call",
}

CALL_KERNEL_NAMES: Tuple[str, ...] = tuple(CALL_KERNEL_SOURCES)


def call_kernel_module(name: str) -> Module:
    """A fresh f_base module (SSA, debug info) for one call-heavy kernel."""
    try:
        source = CALL_KERNEL_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown call kernel {name!r}; choose from {CALL_KERNEL_NAMES}"
        ) from None
    return compile_program(source, module_name=name)


def call_kernel_arguments(
    name: str, *, size: int = 24, seed: int = 9, violate: bool = False
) -> Tuple[List[int], Memory]:
    """Executable arguments (and memory) for one call-heavy kernel.

    ``violate=True`` produces inputs that break a fact the speculative
    interprocedural tier assumes after warming on the default regime
    (meaningful for ``clamp_call``, whose violation fires a guard inside
    the inlined callee body; the other kernels ignore the flag).
    """
    import random

    rng = random.Random(seed + len(name))
    memory = Memory()

    def array(values: Sequence[int]) -> int:
        base = memory.allocate(len(values))
        memory.write_array(base, list(values))
        return base

    if name == "helper_loop":
        values = [rng.randint(-40, 40) for _ in range(size)]
        return [array(values), size, 3], memory
    if name == "chain":
        values = [rng.randint(0, 300) for _ in range(size)]
        return [array(values), size], memory
    if name == "fib":
        return [12], memory
    if name == "clamp_call":
        limit = 100
        values = [rng.randint(0, limit - 1) for _ in range(size)]
        if violate:
            values[size // 2] = limit + 41  # one outlier saturates mid-loop
        return [array(values), size, limit], memory
    raise KeyError(f"unknown call kernel {name!r}")


def benchmark_source(name: str) -> str:
    """MiniC source of one named benchmark kernel."""
    try:
        return BENCHMARK_SOURCES[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}") from None


def benchmark_function(name: str) -> Function:
    """The f_base (SSA + debug info) form of one named benchmark kernel."""
    return compile_function(benchmark_source(name), name)


def benchmark_functions() -> Dict[str, Function]:
    """All twelve kernels, compiled to f_base."""
    return {name: benchmark_function(name) for name in BENCHMARK_NAMES}


def benchmark_arguments(name: str, *, size: int = 24, seed: int = 7) -> Tuple[List[int], Memory]:
    """Executable arguments (and pre-initialized memory) for one kernel.

    Array parameters are materialized in a fresh :class:`Memory` and passed
    by base address, mirroring how the original programs would receive
    pointers.
    """
    import random

    rng = random.Random(seed + len(name))
    memory = Memory()

    def array(values: Sequence[int]) -> int:
        base = memory.allocate(len(values))
        memory.write_array(base, list(values))
        return base

    data = [rng.randint(0, 255) for _ in range(size)]
    signed = [rng.randint(-50, 50) for _ in range(size)]

    if name == "bzip2":
        return [array(data), size], memory
    if name == "h264ref":
        return [array(data), array(list(reversed(data))), size], memory
    if name == "hmmer":
        return [array(signed), array(data), size], memory
    if name == "namd":
        return [array(signed), array(list(reversed(signed))), min(size, 12)], memory
    if name == "perlbench":
        return [array(data), size], memory
    if name == "sjeng":
        return [array(signed), size], memory
    if name == "soplex":
        return [array(signed), size], memory
    if name == "bullet":
        lows = sorted(rng.randint(0, 100) for _ in range(size))
        highs = [lo + rng.randint(1, 20) for lo in lows]
        return [array(lows), array(highs), min(size, 12)], memory
    if name == "dcraw":
        return [array(data), size], memory
    if name == "ffmpeg":
        return [array(signed), size], memory
    if name == "fhourstones":
        return [array(data), size], memory
    if name == "vp8":
        return [array(data), size], memory
    raise KeyError(f"unknown benchmark {name!r}")


def straightline_function(name: str) -> Function:
    """The f_base form of one straight-line (loop-free) kernel."""
    try:
        source = STRAIGHT_LINE_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown straight-line kernel {name!r}; choose from {STRAIGHT_LINE_NAMES}"
        ) from None
    return compile_function(source, name)


def straightline_arguments(name: str, *, seed: int = 5) -> Tuple[List[int], Memory]:
    """Executable arguments (and memory) for one straight-line kernel."""
    import random

    rng = random.Random(seed + len(name))
    memory = Memory()
    if name == "poly8":
        return [rng.randint(-9, 9), rng.randint(-9, 9)], memory
    if name == "blend8":
        base = memory.allocate(9)
        memory.write_array(base, [rng.randint(0, 255) for _ in range(8)] + [0])
        return [base], memory
    raise KeyError(f"unknown straight-line kernel {name!r}")
