"""Workloads: named benchmark kernels, random generators, SPEC-like corpus."""

from .programs import (
    BENCHMARK_NAMES,
    BENCHMARK_SOURCES,
    benchmark_arguments,
    benchmark_function,
    benchmark_functions,
    benchmark_source,
)
from .generator import random_formal_program, random_minic_function
from .spec_corpus import SPEC_BENCHMARKS, CorpusFunction, spec_corpus

__all__ = [
    "BENCHMARK_NAMES",
    "BENCHMARK_SOURCES",
    "benchmark_source",
    "benchmark_function",
    "benchmark_functions",
    "benchmark_arguments",
    "random_minic_function",
    "random_formal_program",
    "SPEC_BENCHMARKS",
    "CorpusFunction",
    "spec_corpus",
]
