"""Workloads: named benchmark kernels, random generators, SPEC-like corpus."""

from .programs import (
    BENCHMARK_NAMES,
    BENCHMARK_SOURCES,
    CALL_KERNEL_ENTRIES,
    CALL_KERNEL_NAMES,
    CALL_KERNEL_SOURCES,
    LOOP_KERNEL_NAMES,
    STRAIGHT_LINE_NAMES,
    STRAIGHT_LINE_SOURCES,
    benchmark_arguments,
    benchmark_function,
    benchmark_functions,
    benchmark_source,
    call_kernel_arguments,
    call_kernel_module,
    straightline_arguments,
    straightline_function,
)
from .generator import random_formal_program, random_minic_function
from .spec_corpus import SPEC_BENCHMARKS, CorpusFunction, spec_corpus
from .speculative import (
    SPECULATIVE_NAMES,
    SPECULATIVE_SOURCES,
    speculative_arguments,
    speculative_function,
    speculative_source,
)

__all__ = [
    "SPECULATIVE_NAMES",
    "SPECULATIVE_SOURCES",
    "speculative_source",
    "speculative_function",
    "speculative_arguments",
    "BENCHMARK_NAMES",
    "BENCHMARK_SOURCES",
    "CALL_KERNEL_NAMES",
    "CALL_KERNEL_SOURCES",
    "CALL_KERNEL_ENTRIES",
    "call_kernel_module",
    "call_kernel_arguments",
    "LOOP_KERNEL_NAMES",
    "STRAIGHT_LINE_NAMES",
    "STRAIGHT_LINE_SOURCES",
    "benchmark_source",
    "benchmark_function",
    "benchmark_functions",
    "benchmark_arguments",
    "straightline_function",
    "straightline_arguments",
    "random_minic_function",
    "random_formal_program",
    "SPEC_BENCHMARKS",
    "CorpusFunction",
    "spec_corpus",
]
