"""Synthetic SPEC CPU2006-like corpus for the Section 7 study.

Table 4, Table 5 and Figure 9 analyse *every* function of the SPEC
CPU2006 C benchmarks (thousands of functions).  Shipping those sources is
not possible, so this module builds a corpus with the same shape: for each
of the twelve C benchmarks the paper lists, it generates a deterministic
set of MiniC functions (the named kernel of that benchmark plus many
seeded random functions), each compiled to f_base with debug metadata.
Corpus sizes are scaled down (tens of functions per benchmark rather than
thousands) so the full study runs in seconds; the per-function analysis is
identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..frontend import compile_function
from ..ir.function import Function
from .generator import random_minic_function
from .programs import BENCHMARK_SOURCES

__all__ = ["SPEC_BENCHMARKS", "CorpusFunction", "spec_corpus"]

#: The SPEC CPU2006 C benchmarks analysed in Table 4, with the (scaled
#: down) number of corpus functions generated for each.
SPEC_BENCHMARKS: Dict[str, int] = {
    "bzip2": 14,
    "gcc": 40,
    "gobmk": 30,
    "h264ref": 22,
    "hmmer": 16,
    "lbm": 6,
    "libquantum": 8,
    "mcf": 6,
    "milc": 12,
    "perlbench": 34,
    "sjeng": 12,
    "sphinx3": 14,
}


@dataclass
class CorpusFunction:
    """One function of the synthetic corpus."""

    benchmark: str
    name: str
    function: Function

    @property
    def debug(self):
        return self.function.metadata.get("debug")


def _seed_for(benchmark: str, index: int) -> int:
    return (hash(benchmark) & 0xFFFF) * 1000 + index


def spec_corpus(
    *,
    functions_per_benchmark: Optional[Dict[str, int]] = None,
    scale: float = 1.0,
) -> List[CorpusFunction]:
    """Build the synthetic SPEC-like corpus.

    ``scale`` shrinks or grows every benchmark's function count (the
    benchmark harness uses a smaller scale for quick runs); counts are
    never reduced below 3 so every benchmark keeps a meaningful sample.
    """
    counts = dict(functions_per_benchmark or SPEC_BENCHMARKS)
    corpus: List[CorpusFunction] = []
    for benchmark, count in counts.items():
        scaled = max(3, int(round(count * scale)))
        for index in range(scaled):
            name = f"{benchmark}_fn{index}"
            if index == 0 and benchmark in BENCHMARK_SOURCES:
                # Reuse the hand-written kernel as the benchmark's "hottest
                # function", renamed to fit the corpus naming scheme.
                source = BENCHMARK_SOURCES[benchmark].replace(
                    f"func {benchmark}(", f"func {name}(", 1
                )
            else:
                source = random_minic_function(
                    name,
                    _seed_for(benchmark, index),
                    statements=6 + (index % 9),
                    max_depth=2,
                    use_array=(index % 3 != 2),
                )
            function = compile_function(source, name)
            corpus.append(CorpusFunction(benchmark, name, function))
    return corpus
