"""Seeded random program generators.

Two generators are provided:

* :func:`random_minic_function` — emits MiniC source with nested loops,
  branches, redundant arithmetic and array traffic.  The Section 7 corpus
  (:mod:`repro.workloads.spec_corpus`) is built from many such functions
  per benchmark, standing in for the hundreds of functions of the SPEC C
  programs the paper analyses.
* :func:`random_formal_program` — emits linear programs of the formal
  language, used by property-based tests of Theorem 3.2, the rewrite
  rules and OSR mapping soundness.

Both are deterministic in their ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..formal.program import (
    FAssign,
    FCondGoto,
    FGoto,
    FIn,
    FOut,
    FSkip,
    FormalProgram,
)
from ..ir.expr import BinOp, Const, Expr, Var

__all__ = ["random_minic_function", "random_formal_program"]


# ---------------------------------------------------------------------- #
# MiniC source generator.
# ---------------------------------------------------------------------- #


def random_minic_function(
    name: str,
    seed: int,
    *,
    statements: int = 12,
    max_depth: int = 2,
    use_array: bool = True,
) -> str:
    """Generate the source of one random MiniC function.

    The function takes ``(data, n)`` when ``use_array`` is true (``data``
    is an array base pointer) or just ``(n)`` otherwise, declares a few
    scalars, and mixes assignments with redundant subexpressions (to give
    CSE/LICM material), ``if``/``while`` nesting and array reads.
    """
    rng = random.Random(seed)
    scalars = ["a", "b", "c", "s"]
    params = ["data", "n"] if use_array else ["n"]
    reads = list(scalars) + ["n", "i"]

    lines: List[str] = [f"func {name}({', '.join(params)}) {{"]
    for scalar in scalars:
        lines.append(f"  var {scalar} = {rng.randint(0, 9)};")
    lines.append("  var i = 0;")

    def expr(depth: int = 0) -> str:
        choice = rng.random()
        if depth >= 2 or choice < 0.35:
            if rng.random() < 0.5:
                return rng.choice(reads)
            return str(rng.randint(1, 16))
        if use_array and choice < 0.45:
            return f"data[{rng.choice(['i', 'i + 1', 'n - 1', str(rng.randint(0, 7))])}]"
        op = rng.choice(["+", "-", "*", "+", "-"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    def statement(indent: str, depth: int, budget: List[int]) -> List[str]:
        if budget[0] <= 0:
            return []
        budget[0] -= 1
        kind = rng.random()
        target = rng.choice(scalars)
        if kind < 0.45 or depth >= max_depth:
            # Occasionally emit a deliberately redundant pair of
            # computations so CSE has something to find.
            if rng.random() < 0.3:
                shared = expr(1)
                other = rng.choice([s for s in scalars if s != target])
                return [
                    f"{indent}{target} = {shared} + {rng.randint(1, 5)};",
                    f"{indent}{other} = {shared} + {rng.randint(6, 9)};",
                ]
            return [f"{indent}{target} = {expr()};"]
        if kind < 0.7:
            body = statement(indent + "  ", depth + 1, budget) or [
                f"{indent}  {target} = {target} + 1;"
            ]
            else_body = statement(indent + "  ", depth + 1, budget)
            result = [f"{indent}if ({expr(1)} > {expr(1)}) {{", *body, f"{indent}}}"]
            if else_body:
                result[-1] = f"{indent}}} else {{"
                result.extend(else_body)
                result.append(f"{indent}}}")
            return result
        # A bounded while loop over a fresh counter region.
        body = statement(indent + "  ", depth + 1, budget) or [
            f"{indent}  {target} = {target} + i;"
        ]
        return [
            f"{indent}i = 0;",
            f"{indent}while (i < n) {{",
            *body,
            f"{indent}  i = i + 1;",
            f"{indent}}}",
        ]

    budget = [statements]
    while budget[0] > 0:
        lines.extend(statement("  ", 0, budget))
    lines.append("  return s + a * 2 + b - c;")
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Formal-language program generator.
# ---------------------------------------------------------------------- #


def random_formal_program(
    seed: int,
    *,
    length: int = 10,
    variables: Sequence[str] = ("x", "y", "z", "w"),
    allow_loops: bool = False,
) -> FormalProgram:
    """Generate a random (terminating) formal program.

    With ``allow_loops=False`` all gotos jump forward, so every program
    terminates on every store — convenient for property-based testing of
    semantics-level claims.  Inputs are the first two variables; the
    output is the last one assigned (falling back to an input).
    """
    rng = random.Random(seed)
    variables = list(variables)
    inputs = variables[:2]

    def expr(defined: Sequence[str]) -> Expr:
        roll = rng.random()
        if roll < 0.3 or not defined:
            return Const(rng.randint(-5, 9))
        if roll < 0.6:
            return Var(rng.choice(list(defined)))
        op = rng.choice(["add", "sub", "mul"])
        lhs = Var(rng.choice(list(defined))) if defined else Const(rng.randint(0, 5))
        rhs = Const(rng.randint(1, 4)) if rng.random() < 0.5 else (
            Var(rng.choice(list(defined))) if defined else Const(1)
        )
        return BinOp(op, lhs, rhs)

    body_len = max(3, length)
    instructions: List = [FIn(tuple(inputs))]
    defined = list(inputs)
    last_assigned = inputs[0]
    for position in range(2, body_len + 2):
        roll = rng.random()
        remaining = body_len + 2 - position
        if roll < 0.15 and remaining > 2:
            # Forward conditional jump (always to a later point, before out).
            target = rng.randint(position + 1, body_len + 1)
            instructions.append(FCondGoto(expr(defined), target))
        elif roll < 0.2:
            instructions.append(FSkip())
        else:
            dest = rng.choice(variables)
            instructions.append(FAssign(dest, expr(defined)))
            if dest not in defined:
                defined.append(dest)
            last_assigned = dest
        if allow_loops and roll >= 0.97 and position > 4:
            instructions[-1] = FGoto(rng.randint(2, position - 1))
    instructions.append(FOut((last_assigned,)))
    return FormalProgram(instructions)
