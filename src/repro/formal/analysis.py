"""Liveness and reaching definitions for the formal language.

These are the analyses needed by Sections 2–4 of the paper: ``live(p, l)``
(Definition 2.7) drives OSR mapping soundness and the LVE property, and
unique reaching definitions (the ``ud`` predicate) drive Algorithm 1.

The CTL-based definitions of Figure 3 are implemented separately in
:mod:`repro.ctl`; tests check that the dataflow implementation below and
the CTL formulation agree point-for-point, which reproduces the paper's
claim that the CTL formalism captures the standard analyses.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from .program import FAssign, FIn, FormalProgram

__all__ = [
    "formal_live_variables",
    "formal_live_at",
    "formal_reaching_definitions",
    "formal_unique_reaching_definition",
]

#: Pseudo-point used for definitions provided by the ``in`` instruction.
IN_POINT = 1


def formal_live_variables(program: FormalProgram) -> Dict[int, FrozenSet[str]]:
    """Live-variable sets for every program point (Definition 2.7).

    ``result[l]`` is the set of variables live *before* executing the
    instruction at point ``l``.  Point ``n + 1`` (program exit) is included
    with an empty set for convenience.
    """
    n = len(program)
    live: Dict[int, Set[str]] = {point: set() for point in range(1, n + 2)}

    changed = True
    while changed:
        changed = False
        for point in range(n, 0, -1):
            inst = program[point]
            out_set: Set[str] = set()
            for succ in program.successors(point):
                out_set |= live.get(succ, set())
            defined = inst.defined_variable()
            new_live = set(inst.used_variables()) | (
                out_set - ({defined} if defined else set())
            )
            if new_live != live[point]:
                live[point] = new_live
                changed = True
    return {point: frozenset(values) for point, values in live.items()}


def formal_live_at(program: FormalProgram, point: int) -> FrozenSet[str]:
    """``live(p, l)`` for a single point (recomputes the full analysis)."""
    return formal_live_variables(program)[point]


def formal_reaching_definitions(
    program: FormalProgram,
) -> Dict[int, FrozenSet[Tuple[str, int]]]:
    """Reaching ``(variable, defining point)`` pairs before each point.

    Definitions come from assignments and from the ``in`` instruction
    (whose point is 1).
    """
    n = len(program)
    gen: Dict[int, Set[Tuple[str, int]]] = {}
    kill_var: Dict[int, Optional[str]] = {}
    for point in program.points():
        inst = program[point]
        if isinstance(inst, FAssign):
            gen[point] = {(inst.dest, point)}
            kill_var[point] = inst.dest
        elif isinstance(inst, FIn):
            gen[point] = {(name, point) for name in inst.variables}
            kill_var[point] = None
        else:
            gen[point] = set()
            kill_var[point] = None

    reach_in: Dict[int, Set[Tuple[str, int]]] = {point: set() for point in range(1, n + 2)}
    reach_out: Dict[int, Set[Tuple[str, int]]] = {point: set() for point in program.points()}

    changed = True
    while changed:
        changed = False
        for point in program.points():
            incoming: Set[Tuple[str, int]] = set()
            for pred in program.predecessors(point):
                incoming |= reach_out[pred]
            if incoming != reach_in[point]:
                reach_in[point] = incoming
                changed = True
            killed = kill_var[point]
            surviving = (
                {d for d in incoming if d[0] != killed} if killed else set(incoming)
            )
            out = gen[point] | surviving
            if out != reach_out[point]:
                reach_out[point] = out
                changed = True
    # Exit point n+1 sees whatever flows out of the out instruction.
    reach_in[n + 1] = set(reach_out[n])
    return {point: frozenset(defs) for point, defs in reach_in.items()}


def formal_unique_reaching_definition(
    program: FormalProgram, var: str, point: int
) -> Optional[int]:
    """The ``ud(x, p, l_d, l_r)`` predicate: the unique defining point, if any."""
    reaching = formal_reaching_definitions(program)[point]
    candidates = sorted(def_point for name, def_point in reaching if name == var)
    if len(candidates) == 1:
        return candidates[0]
    return None
