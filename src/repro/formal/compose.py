"""Program composition (Definition 3.3) and live-store replacement (Theorem 3.2).

``compose`` implements the sequential composition ``p ∘ p'`` used to chain
compensation-code programs when OSR mappings are composed (Theorem 3.4):
the ``out`` of the first program must cover the ``in`` of the second, the
boundary instructions are dropped and goto targets of the second program
are relocated.

``check_live_store_replacement`` is the executable form of Theorem 3.2: at
any state of a run, throwing away dead variables and continuing must
produce the same output.  Property-based tests exercise it over random
programs and stores.
"""

from __future__ import annotations

from typing import Mapping

from .analysis import formal_live_variables
from .program import FormalProgram
from .semantics import (
    FormalAbort,
    UndefinedSemantics,
    run_formal,
    trace_formal,
)

__all__ = ["ComposeError", "compose", "check_live_store_replacement"]


class ComposeError(ValueError):
    """Raised when two programs are not composable per Definition 3.3."""


def compose(p: FormalProgram, q: FormalProgram) -> FormalProgram:
    """Sequential composition ``p ∘ q`` (Definition 3.3).

    Requires the output variables of ``p`` to be a superset of the input
    variables of ``q``.  The result behaves as "run p, then run q on p's
    final store": ``[[p ∘ q]](σ) = [[q]]([[p]](σ))``.
    """
    p_out = set(p.output_variables)
    q_in = set(q.input_variables)
    if not q_in <= p_out:
        raise ComposeError(
            f"programs are not composable: q needs inputs {sorted(q_in - p_out)} "
            "that p does not output"
        )
    # Per Definition 3.3: drop p's trailing `out` and q's leading `in`,
    # then shift q's goto targets by |p| - 2 so they land on the relocated
    # instructions.
    offset = len(p) - 2
    body_p = list(p.instructions[:-1])  # keep p's `in`, drop its `out`
    body_q = [inst.renumbered(offset) for inst in q.instructions[1:]]  # drop q's `in`
    # The result's `out` is q's `out` (already included in body_q, renumbered).
    return FormalProgram(body_p + body_q)


def check_live_store_replacement(
    program: FormalProgram,
    initial_store: Mapping[str, int],
    *,
    max_steps: int = 100_000,
) -> bool:
    """Empirically check Theorem 3.2 on one run of ``program``.

    For every state ``(σ, l)`` in the trace from ``initial_store``,
    restricting ``σ`` to ``live(p, l)`` and resuming from ``l`` must yield
    the same output store as the original run.  Returns ``True`` when the
    property holds at every state; raises if the original run itself has
    undefined semantics (callers should only pass valid runs).
    """
    live = formal_live_variables(program)
    reference_output = run_formal(program, initial_store, max_steps=max_steps)
    states = trace_formal(program, initial_store, max_steps=max_steps)
    for state in states:
        if state.point > len(program):
            continue
        if state.point == 1:
            # The initial `in` instruction checks that every declared input
            # is defined, including dead ones; the theorem speaks about the
            # states of the computation proper, so start checking after it.
            continue
        full_store = state.store_dict()
        restricted = {
            name: value
            for name, value in full_store.items()
            if name in live[state.point]
        }
        try:
            resumed_output = run_formal(
                program, restricted, max_steps=max_steps, start_point=state.point
            )
        except (FormalAbort, UndefinedSemantics):
            return False
        if resumed_output != reference_output:
            return False
    return True
