"""The paper's minimal imperative language (Figure 1).

A *formal program* is a plain sequence of instructions indexed by program
points ``1..n``:

* ``I1`` must be ``in x y ...`` (declares the input variables),
* ``In`` must be ``out x y ...`` (declares the output variables),
* the instructions in between are assignments, (conditional) gotos,
  ``skip`` and ``abort``.

This representation exists alongside the block-structured IR because the
paper's Sections 2–4 (OSR mappings, LVE transformations, Algorithm 1 and
its correctness argument) are stated on this language; reproducing them
faithfully — including the rewrite rules of Figure 5 with CTL side
conditions — is easiest on the exact same syntax.  Section 5 onwards uses
the block IR (:mod:`repro.ir`).

Program points are 1-based integers, matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.expr import Expr, free_vars
from ..ir.parser import parse_expr

__all__ = [
    "FormalInstruction",
    "FAssign",
    "FGoto",
    "FCondGoto",
    "FSkip",
    "FAbort",
    "FIn",
    "FOut",
    "FormalProgram",
    "parse_formal_program",
]


class FormalInstruction:
    """Base class of formal-language instructions."""

    def defined_variable(self) -> Optional[str]:
        """The variable written by this instruction, if any."""
        return None

    def used_variables(self) -> Tuple[str, ...]:
        """Variables read by this instruction."""
        return ()

    def renumbered(self, offset: int) -> "FormalInstruction":
        """A copy with every goto target shifted by ``offset``."""
        return self


@dataclass(frozen=True)
class FAssign(FormalInstruction):
    """``x := e``"""

    dest: str
    expr: Expr

    def defined_variable(self) -> Optional[str]:
        return self.dest

    def used_variables(self) -> Tuple[str, ...]:
        return tuple(sorted(free_vars(self.expr)))

    def __str__(self) -> str:
        return f"{self.dest} := {self.expr}"


@dataclass(frozen=True)
class FGoto(FormalInstruction):
    """``goto m``"""

    target: int

    def renumbered(self, offset: int) -> "FGoto":
        return FGoto(self.target + offset)

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class FCondGoto(FormalInstruction):
    """``if (e) goto m`` — jump when ``e`` evaluates to non-zero."""

    cond: Expr
    target: int

    def used_variables(self) -> Tuple[str, ...]:
        return tuple(sorted(free_vars(self.cond)))

    def renumbered(self, offset: int) -> "FCondGoto":
        return FCondGoto(self.cond, self.target + offset)

    def __str__(self) -> str:
        return f"if ({self.cond}) goto {self.target}"


@dataclass(frozen=True)
class FSkip(FormalInstruction):
    """``skip``"""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class FAbort(FormalInstruction):
    """``abort``"""

    def __str__(self) -> str:
        return "abort"


@dataclass(frozen=True)
class FIn(FormalInstruction):
    """``in x y ...`` — the variables that must be defined on entry."""

    variables: Tuple[str, ...]

    def __str__(self) -> str:
        return "in " + " ".join(self.variables)


@dataclass(frozen=True)
class FOut(FormalInstruction):
    """``out x y ...`` — the variables returned as program output."""

    variables: Tuple[str, ...]

    def used_variables(self) -> Tuple[str, ...]:
        return tuple(self.variables)

    def __str__(self) -> str:
        return "out " + " ".join(self.variables)


class FormalProgram:
    """A program of the paper's minimal language (Definition 2.1)."""

    def __init__(self, instructions: Sequence[FormalInstruction]) -> None:
        instructions = list(instructions)
        if len(instructions) < 2:
            raise ValueError("a program needs at least an 'in' and an 'out' instruction")
        if not isinstance(instructions[0], FIn):
            raise ValueError("the first instruction must be 'in ...'")
        if not isinstance(instructions[-1], FOut):
            raise ValueError("the last instruction must be 'out ...'")
        for inst in instructions[1:-1]:
            if isinstance(inst, (FIn, FOut)):
                raise ValueError("'in'/'out' may only appear at the program boundaries")
        self.instructions: List[FormalInstruction] = instructions

    # ------------------------------------------------------------------ #
    # Basic accessors (1-based, matching the paper).
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, point: int) -> FormalInstruction:
        """Instruction at program point ``point`` (1-based)."""
        if not 1 <= point <= len(self.instructions):
            raise IndexError(f"program point {point} out of range 1..{len(self)}")
        return self.instructions[point - 1]

    def points(self) -> range:
        """All program points, ``1..n``."""
        return range(1, len(self.instructions) + 1)

    @property
    def input_variables(self) -> Tuple[str, ...]:
        first = self.instructions[0]
        assert isinstance(first, FIn)
        return first.variables

    @property
    def output_variables(self) -> Tuple[str, ...]:
        last = self.instructions[-1]
        assert isinstance(last, FOut)
        return last.variables

    def variables(self) -> Tuple[str, ...]:
        """All variables mentioned anywhere in the program."""
        names: Dict[str, None] = {}
        for inst in self.instructions:
            defined = inst.defined_variable()
            if defined is not None:
                names.setdefault(defined, None)
            for used in inst.used_variables():
                names.setdefault(used, None)
        for v in self.input_variables:
            names.setdefault(v, None)
        return tuple(names)

    # ------------------------------------------------------------------ #
    # Control-flow structure.
    # ------------------------------------------------------------------ #
    def successors(self, point: int) -> Tuple[int, ...]:
        """Program points that may execute immediately after ``point``.

        The final ``out`` has the virtual successor ``n + 1`` (program
        exit), mirroring the semantics of Figure 2.
        """
        inst = self[point]
        n = len(self)
        if isinstance(inst, FGoto):
            return (inst.target,)
        if isinstance(inst, FCondGoto):
            fallthrough = point + 1
            if inst.target == fallthrough:
                return (fallthrough,)
            return (fallthrough, inst.target)
        if isinstance(inst, FAbort):
            return ()
        if isinstance(inst, FOut):
            return (n + 1,)
        return (point + 1,)

    def predecessors(self, point: int) -> Tuple[int, ...]:
        preds = [
            other
            for other in self.points()
            if point in self.successors(other)
        ]
        return tuple(preds)

    def replace(self, point: int, new_instruction: FormalInstruction) -> "FormalProgram":
        """A copy of the program with the instruction at ``point`` replaced."""
        instructions = list(self.instructions)
        instructions[point - 1] = new_instruction
        return FormalProgram(instructions)

    def copy(self) -> "FormalProgram":
        return FormalProgram(list(self.instructions))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FormalProgram) and self.instructions == other.instructions

    def __str__(self) -> str:
        width = len(str(len(self.instructions)))
        return "\n".join(
            f"{str(i + 1).rjust(width)}: {inst}"
            for i, inst in enumerate(self.instructions)
        )

    def __repr__(self) -> str:
        return f"<FormalProgram with {len(self)} instructions>"


def parse_formal_program(text: str) -> FormalProgram:
    """Parse the textual form of a formal program.

    The accepted syntax is one instruction per line (optional ``k:`` point
    prefixes are ignored), e.g.::

        in n
        i := 0
        s := 0
        if (i >= n) goto 8
        s := s + i
        i := i + 1
        goto 4
        out s
    """
    instructions: List[FormalInstruction] = []
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        # Strip an optional leading "k:" point label.
        if ":" in line:
            head, rest = line.split(":", 1)
            if head.strip().isdigit() and ":=" not in head:
                line = rest.strip()
        if line.startswith("in ") or line == "in":
            instructions.append(FIn(tuple(line.split()[1:])))
        elif line.startswith("out ") or line == "out":
            instructions.append(FOut(tuple(line.split()[1:])))
        elif line == "skip":
            instructions.append(FSkip())
        elif line == "abort":
            instructions.append(FAbort())
        elif line.startswith("goto "):
            instructions.append(FGoto(int(line[len("goto "):])))
        elif line.startswith("if"):
            cond_text, target_text = line[2:].rsplit("goto", 1)
            cond_text = cond_text.strip()
            if cond_text.startswith("(") and cond_text.endswith(")"):
                cond_text = cond_text[1:-1]
            instructions.append(FCondGoto(parse_expr(cond_text), int(target_text)))
        elif ":=" in line:
            dest, expr_text = line.split(":=", 1)
            instructions.append(FAssign(dest.strip(), parse_expr(expr_text)))
        else:
            raise ValueError(f"cannot parse formal instruction {line!r}")
    return FormalProgram(instructions)
