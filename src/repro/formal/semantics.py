"""Big-step semantics, traces and semantic equivalence (Figure 2, Defs 2.2–2.6).

States are ``(store, point)`` pairs; a store is a finite mapping from
variable names to integers (absent variables are ⊥).  ``run`` executes a
program on an initial store and returns the output store restricted to
the ``out`` variables, matching the semantic function ``[[p]]`` of
Definition 2.4; ``trace`` returns the full sequence of states (the trace
``τ_p^σ`` of Definition 2.6), which is what live-variable bisimulation and
the mapping-soundness checks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..ir.expr import evaluate
from .program import (
    FAbort,
    FAssign,
    FCondGoto,
    FGoto,
    FIn,
    FOut,
    FSkip,
    FormalProgram,
)

__all__ = [
    "FormalAbort",
    "UndefinedSemantics",
    "FormalState",
    "run_formal",
    "trace_formal",
    "step",
    "semantically_equivalent_on",
]


class FormalAbort(RuntimeError):
    """Raised when a formal program executes ``abort``."""


class UndefinedSemantics(RuntimeError):
    """Raised when a program has no defined semantics for a store.

    Covers missing input variables, undefined variables in expressions,
    non-termination within the step budget and out-of-range jumps — the
    situations Definition 2.4 groups under "undefined semantics".
    """


Store = Dict[str, int]


@dataclass(frozen=True)
class FormalState:
    """A program state ``(σ, l)``: store plus next program point."""

    store: Tuple[Tuple[str, int], ...]
    point: int

    @staticmethod
    def make(store: Mapping[str, int], point: int) -> "FormalState":
        return FormalState(tuple(sorted(store.items())), point)

    def store_dict(self) -> Store:
        return dict(self.store)


def step(program: FormalProgram, store: Store, point: int) -> Tuple[Store, int]:
    """One transition of the relation ``⇒_p`` (Figure 2).

    Returns the new ``(store, point)``.  The caller is responsible for
    noticing when ``point`` becomes ``|p| + 1`` (the program has finished).
    """
    inst = program[point]
    if isinstance(inst, FIn):
        for name in inst.variables:
            if name not in store:
                raise UndefinedSemantics(
                    f"input variable {name!r} is undefined on entry"
                )
        return store, point + 1
    if isinstance(inst, FOut):
        for name in inst.variables:
            if name not in store:
                raise UndefinedSemantics(
                    f"output variable {name!r} is undefined at the out instruction"
                )
        restricted = {name: store[name] for name in inst.variables}
        return restricted, point + 1
    if isinstance(inst, FAssign):
        try:
            value = evaluate(inst.expr, store)
        except KeyError as exc:
            raise UndefinedSemantics(f"point {point}: {exc}") from exc
        new_store = dict(store)
        new_store[inst.dest] = value
        return new_store, point + 1
    if isinstance(inst, FSkip):
        return store, point + 1
    if isinstance(inst, FGoto):
        _check_target(program, inst.target, point)
        return store, inst.target
    if isinstance(inst, FCondGoto):
        try:
            value = evaluate(inst.cond, store)
        except KeyError as exc:
            raise UndefinedSemantics(f"point {point}: {exc}") from exc
        if value != 0:
            _check_target(program, inst.target, point)
            return store, inst.target
        return store, point + 1
    if isinstance(inst, FAbort):
        raise FormalAbort(f"abort executed at point {point}")
    raise TypeError(f"unknown formal instruction {inst!r}")


def _check_target(program: FormalProgram, target: int, point: int) -> None:
    if not 1 <= target <= len(program):
        raise UndefinedSemantics(
            f"point {point}: goto target {target} is outside the program"
        )


def run_formal(
    program: FormalProgram,
    store: Mapping[str, int],
    *,
    max_steps: int = 100_000,
    start_point: int = 1,
) -> Store:
    """The semantic function ``[[p]](σ)`` (restricted to the output variables).

    ``start_point`` other than 1 models resuming after an OSR landing: the
    store is taken as-is and execution continues from that point.
    """
    current: Store = dict(store)
    point = start_point
    for _ in range(max_steps):
        if point == len(program) + 1:
            return current
        current, point = step(program, current, point)
    raise UndefinedSemantics(f"program did not terminate within {max_steps} steps")


def trace_formal(
    program: FormalProgram,
    store: Mapping[str, int],
    *,
    max_steps: int = 100_000,
    start_point: int = 1,
) -> List[FormalState]:
    """The trace ``τ_p^σ``: every state visited, in order, including the final one."""
    states: List[FormalState] = []
    current: Store = dict(store)
    point = start_point
    for _ in range(max_steps):
        states.append(FormalState.make(current, point))
        if point == len(program) + 1:
            return states
        current, point = step(program, current, point)
    raise UndefinedSemantics(f"program did not terminate within {max_steps} steps")


def semantically_equivalent_on(
    p1: FormalProgram,
    p2: FormalProgram,
    stores: Iterable[Mapping[str, int]],
    *,
    max_steps: int = 100_000,
) -> bool:
    """Empirical check of Definition 2.5 over a finite set of input stores.

    Both programs must produce the same output store (or both fail) on
    every provided store.  This is how tests validate that a rewrite rule
    is semantics-preserving; it is of course not a proof, but combined
    with hypothesis-generated stores it gives strong evidence.
    """
    for store in stores:
        out1: Optional[Store]
        out2: Optional[Store]
        try:
            out1 = run_formal(p1, store, max_steps=max_steps)
        except (FormalAbort, UndefinedSemantics):
            out1 = None
        try:
            out2 = run_formal(p2, store, max_steps=max_steps)
        except (FormalAbort, UndefinedSemantics):
            out2 = None
        if out1 != out2:
            return False
    return True
