"""The paper's formal framework (Sections 2–4) on the minimal language.

This package contains the linear-program language of Figure 1, its
big-step semantics (Figure 2), traces, the liveness / reaching-definition
analyses used by the formal development, program composition
(Definition 3.3) and the executable form of Theorem 3.2.

The rewrite rules of Figure 5 and the OSR mapping machinery live in
:mod:`repro.rewrite` and :mod:`repro.core`, which operate on both this
language and the block-structured IR.
"""

from .program import (
    FAbort,
    FAssign,
    FCondGoto,
    FGoto,
    FIn,
    FOut,
    FSkip,
    FormalInstruction,
    FormalProgram,
    parse_formal_program,
)
from .semantics import (
    FormalAbort,
    FormalState,
    UndefinedSemantics,
    run_formal,
    semantically_equivalent_on,
    step,
    trace_formal,
)
from .analysis import (
    formal_live_at,
    formal_live_variables,
    formal_reaching_definitions,
    formal_unique_reaching_definition,
)
from .compose import ComposeError, check_live_store_replacement, compose

__all__ = [
    "FormalProgram",
    "FormalInstruction",
    "FAssign",
    "FGoto",
    "FCondGoto",
    "FSkip",
    "FAbort",
    "FIn",
    "FOut",
    "parse_formal_program",
    "run_formal",
    "trace_formal",
    "step",
    "FormalState",
    "FormalAbort",
    "UndefinedSemantics",
    "semantically_equivalent_on",
    "formal_live_variables",
    "formal_live_at",
    "formal_reaching_definitions",
    "formal_unique_reaching_definition",
    "compose",
    "ComposeError",
    "check_live_store_replacement",
]
