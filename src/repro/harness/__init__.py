"""Experiment harness: one driver per table/figure of the paper's evaluation."""

from .experiments import (
    build_version_pairs,
    figure7_optimizing_osr,
    figure8_deoptimizing_osr,
    figure9_recoverability,
    render_rows,
    table1_pass_instrumentation,
    table2_ir_features,
    table3_compensation_size,
    table4_endangered_functions,
    table5_keep_sets,
)

__all__ = [
    "render_rows",
    "build_version_pairs",
    "table1_pass_instrumentation",
    "table2_ir_features",
    "figure7_optimizing_osr",
    "figure8_deoptimizing_osr",
    "table3_compensation_size",
    "table4_endangered_functions",
    "figure9_recoverability",
    "table5_keep_sets",
]
