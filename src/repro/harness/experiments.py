"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a list of row dictionaries plus (via
:func:`render_rows`) a printable table, so the same code serves the
pytest-benchmark harness in ``benchmarks/``, the examples and
EXPERIMENTS.md.  Absolute numbers differ from the paper (the workloads are
synthetic stand-ins — see DESIGN.md), but each driver's docstring states
the qualitative shape the paper reports, and the benchmark suite asserts
those shapes.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence

from ..core import OSRTransDriver, ReconstructionMode
from ..core.codemapper import ActionKind
from ..core.debug import measure_recoverability
from ..core.reconstruct import OSRPointClass
from ..ir.printer import format_table
from ..passes import ALL_PASSES, standard_pipeline
from ..workloads import (
    BENCHMARK_NAMES,
    benchmark_function,
    spec_corpus,
)

__all__ = [
    "render_rows",
    "build_version_pairs",
    "table1_pass_instrumentation",
    "table2_ir_features",
    "figure7_optimizing_osr",
    "figure8_deoptimizing_osr",
    "table3_compensation_size",
    "table4_endangered_functions",
    "figure9_recoverability",
    "table5_keep_sets",
]


def render_rows(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render experiment rows as an ASCII table."""
    if not rows:
        return title
    headers = list(rows[0].keys())
    body = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, body, title=title)


def _fmt(value: float, digits: int = 2) -> float:
    return round(value, digits)


# ---------------------------------------------------------------------- #
# Shared preparation.
# ---------------------------------------------------------------------- #

_PAIR_CACHE: Dict[str, object] = {}


def build_version_pairs(names: Sequence[str] = BENCHMARK_NAMES):
    """Optimize every named kernel once and cache the version pairs."""
    pairs = {}
    for name in names:
        cached = _PAIR_CACHE.get(name)
        if cached is None:
            function = benchmark_function(name)
            cached = OSRTransDriver(standard_pipeline()).run(function)
            _PAIR_CACHE[name] = cached
        pairs[name] = cached
    return pairs


# ---------------------------------------------------------------------- #
# Table 1 — edits performed to the optimization passes.
# ---------------------------------------------------------------------- #


def table1_pass_instrumentation() -> List[Dict[str, object]]:
    """Table 1: how much instrumentation each OSR-aware pass needs.

    The paper reports, for each edited LLVM pass, its size, the number of
    changed lines and the number of primitive-action tracking points.  Our
    passes are re-implementations, so the analogous measurements are the
    pass implementation size, the number of CodeMapper call sites in its
    source (the "changed" lines an implementor must add) and the action
    kinds it can emit.  Expected shape: instrumentation is small relative
    to pass size (a handful of call sites per pass).
    """
    import inspect
    import re

    rows: List[Dict[str, object]] = []
    for name, pass_cls in ALL_PASSES.items():
        source = inspect.getsource(inspect.getmodule(pass_cls))
        call_sites = len(
            re.findall(
                r"mapper\.(add_instruction|delete_instruction|hoist_instruction|"
                r"sink_instruction|replace_all_uses_with)",
                source,
            )
        )
        rows.append(
            {
                "pass": name,
                "loc": pass_cls.implementation_loc(),
                "instrumentation_sites": call_sites,
                "action_kinds": len(pass_cls.tracked_action_kinds),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Table 2 — IR features of the analyzed code.
# ---------------------------------------------------------------------- #


def table2_ir_features(names: Sequence[str] = BENCHMARK_NAMES) -> List[Dict[str, object]]:
    """Table 2: |f_base|, |φ_base|, |f_opt|, |φ_opt| and primitive actions.

    Expected shape: f_opt is somewhat smaller than f_base but may contain
    *more* phi nodes (LCSSA insertions); delete and replace dominate the
    action counts.
    """
    rows: List[Dict[str, object]] = []
    for name, pair in build_version_pairs(names).items():
        counts = pair.mapper.action_counts()
        rows.append(
            {
                "benchmark": name,
                "f_base": pair.base.num_instructions(),
                "phi_base": pair.base.num_phis(),
                "f_opt": pair.optimized.num_instructions(),
                "phi_opt": pair.optimized.num_phis(),
                "add": counts[ActionKind.ADD],
                "delete": counts[ActionKind.DELETE],
                "hoist": counts[ActionKind.HOIST],
                "sink": counts[ActionKind.SINK],
                "replace": counts[ActionKind.REPLACE],
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Figures 7 and 8 — feasible OSR points.
# ---------------------------------------------------------------------- #


def _osr_breakdown(names: Sequence[str], *, deopt: bool) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, pair in build_version_pairs(names).items():
        reports = pair.report(deopt=deopt)
        total = len(reports) or 1
        counts = {cls: 0 for cls in OSRPointClass}
        for report in reports:
            counts[report.point_class] += 1
        empty = counts[OSRPointClass.EMPTY] / total
        live = counts[OSRPointClass.LIVE] / total
        avail = counts[OSRPointClass.AVAIL] / total
        rows.append(
            {
                "benchmark": name,
                "points": total,
                "empty_pct": _fmt(100 * empty, 1),
                "live_pct": _fmt(100 * (empty + live), 1),
                "avail_pct": _fmt(100 * (empty + live + avail), 1),
                "unsupported_pct": _fmt(
                    100 * counts[OSRPointClass.UNSUPPORTED] / total, 1
                ),
            }
        )
    return rows


def figure7_optimizing_osr(names: Sequence[str] = BENCHMARK_NAMES) -> List[Dict[str, object]]:
    """Figure 7: breakdown of feasible f_base → f_opt OSR points.

    ``live_pct``/``avail_pct`` are cumulative (as in the paper's stacked
    bars).  Expected shape: empty-compensation points are a small
    fraction; ``live`` covers the majority of points for most benchmarks;
    ``avail`` pushes coverage close to the maximum achievable.
    """
    return _osr_breakdown(names, deopt=False)


def figure8_deoptimizing_osr(names: Sequence[str] = BENCHMARK_NAMES) -> List[Dict[str, object]]:
    """Figure 8: breakdown of feasible f_opt → f_base OSR points.

    Expected shape: the empty fraction varies widely per benchmark, and
    ``avail`` coverage is at least as high as in the optimizing direction.
    """
    return _osr_breakdown(names, deopt=True)


# ---------------------------------------------------------------------- #
# Table 3 — compensation-code size.
# ---------------------------------------------------------------------- #


def table3_compensation_size(names: Sequence[str] = BENCHMARK_NAMES) -> List[Dict[str, object]]:
    """Table 3: average and peak |c|, and |K_avail|, in both directions.

    Expected shape: compensation code for deoptimizing OSR is markedly
    smaller on average than for optimizing OSR, and the keep sets are
    small (a handful of values).
    """
    rows: List[Dict[str, object]] = []
    for name, pair in build_version_pairs(names).items():
        row: Dict[str, object] = {"benchmark": name}
        for direction, deopt in (("fwd", False), ("bwd", True)):
            live_sizes: List[int] = []
            avail_sizes: List[int] = []
            keep_sizes: List[int] = []
            reports = pair.report(deopt=deopt)
            for report in reports:
                if report.compensation is None:
                    continue
                if report.point_class in (OSRPointClass.EMPTY, OSRPointClass.LIVE):
                    live_sizes.append(report.compensation.size)
                    avail_sizes.append(report.compensation.size)
                elif report.point_class is OSRPointClass.AVAIL:
                    avail_sizes.append(report.compensation.size)
                    keep_sizes.append(len(report.compensation.keep_alive))
            row[f"{direction}_live_avg"] = _fmt(statistics.mean(live_sizes)) if live_sizes else 0
            row[f"{direction}_live_max"] = max(live_sizes, default=0)
            row[f"{direction}_avail_avg"] = _fmt(statistics.mean(avail_sizes)) if avail_sizes else 0
            row[f"{direction}_avail_max"] = max(avail_sizes, default=0)
            row[f"{direction}_keep_avg"] = _fmt(statistics.mean(keep_sizes)) if keep_sizes else 0
            row[f"{direction}_keep_max"] = max(keep_sizes, default=0)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# Section 7: Tables 4, 5 and Figure 9 over the SPEC-like corpus.
# ---------------------------------------------------------------------- #

_CORPUS_CACHE: Dict[float, List] = {}


def _corpus_analyses(scale: float = 1.0):
    """Optimize and analyse the synthetic SPEC corpus (cached per scale)."""
    cached = _CORPUS_CACHE.get(scale)
    if cached is not None:
        return cached
    driver = OSRTransDriver(standard_pipeline())
    results = []
    for entry in spec_corpus(scale=scale):
        pair = driver.run(entry.function)
        debug = entry.debug
        recovery = measure_recoverability(pair, debug)
        results.append((entry, pair, recovery))
    _CORPUS_CACHE[scale] = results
    return results


def table4_endangered_functions(scale: float = 1.0) -> List[Dict[str, object]]:
    """Table 4: endangered functions and endangered user variables.

    Expected shape: a minority (but a sizeable one) of optimized functions
    contain endangered user variables; at affected source locations there
    are on average ~1–2 endangered variables, with occasional higher
    peaks.
    """
    per_benchmark: Dict[str, Dict[str, object]] = {}
    for entry, pair, recovery in _corpus_analyses(scale):
        analysis = recovery.endangered_analysis
        stats = per_benchmark.setdefault(
            entry.benchmark,
            {
                "total": 0,
                "optimized": 0,
                "endangered": 0,
                "weighted_fraction_num": 0.0,
                "weighted_fraction_den": 0.0,
                "unweighted_fractions": [],
                "per_point_counts": [],
            },
        )
        stats["total"] += 1
        if analysis.optimized:
            stats["optimized"] += 1
        if analysis.is_endangered:
            stats["endangered"] += 1
            fraction = analysis.fraction_affected()
            weight = analysis.base_size
            stats["weighted_fraction_num"] += fraction * weight
            stats["weighted_fraction_den"] += weight
            stats["unweighted_fractions"].append(fraction)
            stats["per_point_counts"].extend(analysis.endangered_counts())

    rows: List[Dict[str, object]] = []
    for benchmark in sorted(per_benchmark):
        stats = per_benchmark[benchmark]
        counts = stats["per_point_counts"]
        rows.append(
            {
                "benchmark": benchmark,
                "F_tot": stats["total"],
                "F_opt": stats["optimized"],
                "F_end": stats["endangered"],
                "avg_w": _fmt(
                    stats["weighted_fraction_num"] / stats["weighted_fraction_den"]
                )
                if stats["weighted_fraction_den"]
                else 0.0,
                "avg_u": _fmt(statistics.mean(stats["unweighted_fractions"]))
                if stats["unweighted_fractions"]
                else 0.0,
                "vars_avg": _fmt(statistics.mean(counts)) if counts else 0.0,
                "vars_std": _fmt(statistics.pstdev(counts)) if len(counts) > 1 else 0.0,
                "vars_max": max(counts, default=0),
            }
        )
    return rows


def figure9_recoverability(scale: float = 1.0) -> List[Dict[str, object]]:
    """Figure 9: global average recoverability ratio for live and avail.

    The global ratio is the |f_base|-weighted average, over endangered
    functions, of each function's average recoverability.  Expected shape:
    ``avail`` recovers the large majority of endangered variables and is
    never worse than ``live``.
    """
    per_benchmark: Dict[str, Dict[str, float]] = {}
    for entry, pair, recovery in _corpus_analyses(scale):
        if not recovery.endangered_analysis.is_endangered:
            continue
        stats = per_benchmark.setdefault(
            entry.benchmark, {"live": 0.0, "avail": 0.0, "weight": 0.0}
        )
        weight = recovery.base_size
        stats["live"] += recovery.average_ratio(ReconstructionMode.LIVE) * weight
        stats["avail"] += recovery.average_ratio(ReconstructionMode.AVAIL) * weight
        stats["weight"] += weight

    rows: List[Dict[str, object]] = []
    for benchmark in sorted(per_benchmark):
        stats = per_benchmark[benchmark]
        weight = stats["weight"] or 1.0
        rows.append(
            {
                "benchmark": benchmark,
                "live_ratio": _fmt(stats["live"] / weight, 3),
                "avail_ratio": _fmt(stats["avail"] / weight, 3),
            }
        )
    return rows


def table5_keep_sets(scale: float = 1.0) -> List[Dict[str, object]]:
    """Table 5: values that must be preserved for the avail strategy.

    Expected shape: a substantial fraction of endangered functions need at
    least one preserved value, but the average keep-set size stays small
    (a few values).
    """
    per_benchmark: Dict[str, Dict[str, object]] = {}
    for entry, pair, recovery in _corpus_analyses(scale):
        if not recovery.endangered_analysis.is_endangered:
            continue
        stats = per_benchmark.setdefault(
            entry.benchmark, {"endangered": 0, "needing": 0, "sizes": []}
        )
        stats["endangered"] += 1
        if recovery.needs_keep_values:
            stats["needing"] += 1
            stats["sizes"].append(len(recovery.keep_set))

    rows: List[Dict[str, object]] = []
    for benchmark in sorted(per_benchmark):
        stats = per_benchmark[benchmark]
        sizes = stats["sizes"]
        rows.append(
            {
                "benchmark": benchmark,
                "F_end": stats["endangered"],
                "frac_needing_keep": _fmt(stats["needing"] / stats["endangered"], 2)
                if stats["endangered"]
                else 0.0,
                "keep_avg": _fmt(statistics.mean(sizes)) if sizes else 0.0,
                "keep_std": _fmt(statistics.pstdev(sizes)) if len(sizes) > 1 else 0.0,
            }
        )
    return rows
