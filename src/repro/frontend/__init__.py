"""MiniC: the small C-like frontend used to author workloads (clang -O0 stand-in)."""

from .ast_nodes import Program, FunctionDef
from .parser import MiniCSyntaxError, parse_minic
from .lowering import (
    LoweringError,
    compile_function,
    compile_program,
    lower_function,
    lower_program,
)

__all__ = [
    "parse_minic",
    "MiniCSyntaxError",
    "Program",
    "FunctionDef",
    "LoweringError",
    "lower_program",
    "lower_function",
    "compile_program",
    "compile_function",
]
