"""Abstract syntax tree for MiniC, the small C-like frontend language.

MiniC exists to play the role of ``clang -O0`` in the paper's pipeline: it
gives the workloads a realistic source form, produces unoptimized
alloca-based IR with debug metadata, and lets the Section 7 experiments
speak about *source* variables and *source* lines.  The language has
integer scalars, fixed-size local arrays, the usual arithmetic/comparison
operators, ``if``/``while``/``for`` control flow, function calls and
``return``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "Node",
    "Program",
    "FunctionDef",
    "Block",
    "VarDecl",
    "Assign",
    "IndexAssign",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "ExprStatement",
    "Expression",
    "IntLiteral",
    "Name",
    "Index",
    "Unary",
    "Binary",
    "CallExpr",
]


@dataclass
class Node:
    """Base class for AST nodes; ``line`` is the 1-based source line."""

    line: int = 0


# ---------------------------------------------------------------------- #
# Expressions.
# ---------------------------------------------------------------------- #


@dataclass
class Expression(Node):
    pass


@dataclass
class IntLiteral(Expression):
    value: int = 0


@dataclass
class Name(Expression):
    name: str = ""


@dataclass
class Index(Expression):
    array: str = ""
    index: Optional[Expression] = None


@dataclass
class Unary(Expression):
    op: str = ""
    operand: Optional[Expression] = None


@dataclass
class Binary(Expression):
    op: str = ""
    lhs: Optional[Expression] = None
    rhs: Optional[Expression] = None


@dataclass
class CallExpr(Expression):
    callee: str = ""
    args: List[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------- #
# Statements.
# ---------------------------------------------------------------------- #


@dataclass
class Block(Node):
    statements: List[Node] = field(default_factory=list)


@dataclass
class VarDecl(Node):
    name: str = ""
    array_size: Optional[int] = None
    initializer: Optional[Expression] = None


@dataclass
class Assign(Node):
    name: str = ""
    value: Optional[Expression] = None


@dataclass
class IndexAssign(Node):
    array: str = ""
    index: Optional[Expression] = None
    value: Optional[Expression] = None


@dataclass
class If(Node):
    condition: Optional[Expression] = None
    then_block: Optional[Block] = None
    else_block: Optional[Block] = None


@dataclass
class While(Node):
    condition: Optional[Expression] = None
    body: Optional[Block] = None


@dataclass
class For(Node):
    init: Optional[Node] = None
    condition: Optional[Expression] = None
    update: Optional[Node] = None
    body: Optional[Block] = None


@dataclass
class Return(Node):
    value: Optional[Expression] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class ExprStatement(Node):
    expression: Optional[Expression] = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class Program(Node):
    functions: List[FunctionDef] = field(default_factory=list)
