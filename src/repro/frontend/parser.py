"""Lexer and recursive-descent parser for MiniC."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    CallExpr,
    Continue,
    ExprStatement,
    Expression,
    For,
    FunctionDef,
    If,
    Index,
    IndexAssign,
    IntLiteral,
    Name,
    Program,
    Return,
    Unary,
    VarDecl,
    While,
)

__all__ = ["MiniCSyntaxError", "parse_minic"]


class MiniCSyntaxError(SyntaxError):
    """Raised for malformed MiniC source."""


KEYWORDS = {"func", "var", "if", "else", "while", "for", "return", "break", "continue"}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|&&|\|\||<<|>>|[-+*/%<>=!&|^(){}\[\],;])
  | (?P<newline>\n)
  | (?P<space>[ \t\r]+)
  | (?P<error>.)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    kind: str   # "number", "ident", "keyword", "op", "eof"
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("space", None):
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "error":
            raise MiniCSyntaxError(f"line {line}: unexpected character {text!r}")
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Token-stream helpers.
    # ------------------------------------------------------------------ #
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise MiniCSyntaxError(
                f"line {token.line}: expected {text!r}, found {token.text!r}"
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise MiniCSyntaxError(
                f"line {token.line}: expected identifier, found {token.text!r}"
            )
        return self.advance()

    # ------------------------------------------------------------------ #
    # Grammar.
    # ------------------------------------------------------------------ #
    def parse_program(self) -> Program:
        functions: List[FunctionDef] = []
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
        return Program(line=1, functions=functions)

    def parse_function(self) -> FunctionDef:
        start = self.expect("func")
        name = self.expect_ident().text
        self.expect("(")
        params: List[str] = []
        if not self.check(")"):
            params.append(self.expect_ident().text)
            while self.accept(","):
                params.append(self.expect_ident().text)
        self.expect(")")
        body = self.parse_block()
        return FunctionDef(line=start.line, name=name, params=params, body=body)

    def parse_block(self) -> Block:
        start = self.expect("{")
        statements: List = []
        while not self.check("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return Block(line=start.line, statements=statements)

    def parse_statement(self):
        token = self.peek()
        if token.text == "var":
            return self.parse_var_decl()
        if token.text == "if":
            return self.parse_if()
        if token.text == "while":
            return self.parse_while()
        if token.text == "for":
            return self.parse_for()
        if token.text == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return Return(line=token.line, value=value)
        if token.text == "break":
            self.advance()
            self.expect(";")
            return Break(line=token.line)
        if token.text == "continue":
            self.advance()
            self.expect(";")
            return Continue(line=token.line)
        if token.text == "{":
            return self.parse_block()
        statement = self.parse_simple_statement()
        self.expect(";")
        return statement

    def parse_simple_statement(self):
        """An assignment, indexed assignment or expression statement (no ';')."""
        token = self.peek()
        if token.kind == "ident":
            next_token = self.tokens[self.pos + 1]
            if next_token.text == "=":
                name = self.advance().text
                self.advance()  # '='
                value = self.parse_expression()
                return Assign(line=token.line, name=name, value=value)
            if next_token.text == "[":
                # Could be an indexed assignment or an indexed read in an
                # expression statement; look ahead for '=' after the ']'.
                save = self.pos
                name = self.advance().text
                self.advance()  # '['
                index = self.parse_expression()
                self.expect("]")
                if self.accept("="):
                    value = self.parse_expression()
                    return IndexAssign(line=token.line, array=name, index=index, value=value)
                self.pos = save
        expression = self.parse_expression()
        return ExprStatement(line=token.line, expression=expression)

    def parse_var_decl(self) -> VarDecl:
        start = self.expect("var")
        name = self.expect_ident().text
        array_size: Optional[int] = None
        initializer: Optional[Expression] = None
        if self.accept("["):
            size_token = self.peek()
            if size_token.kind != "number":
                raise MiniCSyntaxError(
                    f"line {size_token.line}: array size must be a literal"
                )
            array_size = int(self.advance().text)
            self.expect("]")
        if self.accept("="):
            initializer = self.parse_expression()
        self.expect(";")
        return VarDecl(
            line=start.line, name=name, array_size=array_size, initializer=initializer
        )

    def parse_if(self) -> If:
        start = self.expect("if")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        then_block = self.parse_block()
        else_block: Optional[Block] = None
        if self.accept("else"):
            if self.check("if"):
                nested = self.parse_if()
                else_block = Block(line=nested.line, statements=[nested])
            else:
                else_block = self.parse_block()
        return If(line=start.line, condition=condition, then_block=then_block, else_block=else_block)

    def parse_while(self) -> While:
        start = self.expect("while")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        body = self.parse_block()
        return While(line=start.line, condition=condition, body=body)

    def parse_for(self) -> For:
        start = self.expect("for")
        self.expect("(")
        init = None if self.check(";") else self.parse_simple_statement()
        self.expect(";")
        condition = None if self.check(";") else self.parse_expression()
        self.expect(";")
        update = None if self.check(")") else self.parse_simple_statement()
        self.expect(")")
        body = self.parse_block()
        return For(line=start.line, init=init, condition=condition, update=update, body=body)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing).
    # ------------------------------------------------------------------ #
    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expression(self, level: int = 0) -> Expression:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        lhs = self.parse_expression(level + 1)
        while self.peek().text in self._PRECEDENCE[level]:
            op_token = self.advance()
            rhs = self.parse_expression(level + 1)
            lhs = Binary(line=op_token.line, op=op_token.text, lhs=lhs, rhs=rhs)
        return lhs

    def parse_unary(self) -> Expression:
        token = self.peek()
        if token.text in ("-", "!"):
            self.advance()
            operand = self.parse_unary()
            return Unary(line=token.line, op=token.text, operand=operand)
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return IntLiteral(line=token.line, value=int(token.text))
        if token.text == "(":
            self.advance()
            expression = self.parse_expression()
            self.expect(")")
            return expression
        if token.kind == "ident":
            name = self.advance().text
            if self.accept("("):
                args: List[Expression] = []
                if not self.check(")"):
                    args.append(self.parse_expression())
                    while self.accept(","):
                        args.append(self.parse_expression())
                self.expect(")")
                return CallExpr(line=token.line, callee=name, args=args)
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                return Index(line=token.line, array=name, index=index)
            return Name(line=token.line, name=name)
        raise MiniCSyntaxError(
            f"line {token.line}: unexpected token {token.text!r} in expression"
        )


def parse_minic(source: str) -> Program:
    """Parse MiniC source text into an AST."""
    return _Parser(tokenize(source)).parse_program()
