"""Lowering MiniC ASTs to unoptimized (alloca-form) IR — the ``clang -O0`` stage.

Every source variable lives in a single-cell stack slot; every read is a
``load`` and every write a ``store``, so the resulting IR is deliberately
naive.  ``compile_program``/``compile_function`` then run ``mem2reg`` to
produce the f_base the paper starts from (clang -O0 + mem2reg), with
:class:`~repro.core.debug.debuginfo.DebugInfo` recording which register
carries each source variable at each instruction and ``source_line``
marking the instructions that correspond to source locations.

Implementation notes (documented deviations from C):

* ``&&`` and ``||`` are lowered without short-circuiting (both operands
  are evaluated); the workloads only use them on side-effect-free
  operands, so the semantics coincide.
* all values are unbounded Python integers (no overflow).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.debug.debuginfo import DebugInfo
from ..ir.expr import BinOp, Const, Expr, UnOp, Var
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (
    Alloca,
    Assign,
    Branch,
    Call,
    Instruction,
    Jump,
    Load,
    Return,
    Store,
)
from ..ssa.mem2reg import promote_memory_to_registers
from .ast_nodes import (
    Assign as AstAssign,
    Binary,
    Block,
    Break,
    CallExpr,
    Continue,
    ExprStatement,
    Expression,
    For,
    FunctionDef,
    If,
    Index,
    IndexAssign,
    IntLiteral,
    Name,
    Program,
    Return as AstReturn,
    Unary,
    VarDecl,
    While,
)
from .parser import parse_minic

__all__ = ["LoweringError", "lower_program", "lower_function", "compile_program", "compile_function"]

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


class LoweringError(ValueError):
    """Raised for semantic errors (undeclared variables, bad indexing, ...)."""


class _FunctionLowering:
    """Lowers a single MiniC function definition."""

    def __init__(self, definition: FunctionDef) -> None:
        self.definition = definition
        self.function = Function(definition.name, definition.params)
        self.debug = DebugInfo(definition.name)
        self.function.metadata["debug"] = self.debug
        self.scalars: Dict[str, str] = {}   # source name → slot register
        self.arrays: Dict[str, str] = {}    # source name → base-address register
        self.temp_counter = 0
        self.block_counter = 0
        self.current: Optional[BasicBlock] = None
        self.loop_stack: List[Tuple[str, str]] = []  # (continue target, break target)

    # ------------------------------------------------------------------ #
    # Small helpers.
    # ------------------------------------------------------------------ #
    def fresh_temp(self) -> str:
        self.temp_counter += 1
        return f"%t{self.temp_counter}"

    def new_block(self, hint: str) -> str:
        self.block_counter += 1
        label = f"{hint}{self.block_counter}"
        self.function.add_block(label)
        return label

    def emit(self, inst: Instruction, line: int) -> Instruction:
        if self.current is None:
            raise LoweringError("no current block")
        inst.source_line = line if line > 0 else None
        self.current.append(inst)
        return inst

    def set_block(self, label: str) -> None:
        self.current = self.function.blocks[label]

    def terminated(self) -> bool:
        return self.current is not None and self.current.terminator is not None

    # ------------------------------------------------------------------ #
    # Top level.
    # ------------------------------------------------------------------ #
    def lower(self) -> Function:
        entry = self.function.add_block("entry")
        self.current = entry

        # Parameters become mutable locals, exactly as clang -O0 does.
        for param in self.definition.params:
            slot = f"%{param}.addr"
            self.emit(Alloca(slot, 1), self.definition.line)
            self.emit(Store(Var(slot), Var(param)), self.definition.line)
            self.scalars[param] = slot
            self.debug.declare_variable(param, slot, self.definition.line)

        # Hoist every declaration's storage to the entry block so each slot
        # is allocated exactly once (required for promotion).
        assert self.definition.body is not None
        for decl in _collect_declarations(self.definition.body):
            if decl.name in self.scalars or decl.name in self.arrays:
                raise LoweringError(
                    f"line {decl.line}: variable {decl.name!r} declared twice"
                )
            if decl.array_size is None:
                slot = f"%{decl.name}.addr"
                self.emit(Alloca(slot, 1), decl.line)
                self.scalars[decl.name] = slot
                self.debug.declare_variable(decl.name, slot, decl.line)
            else:
                base = f"%{decl.name}.base"
                self.emit(Alloca(base, decl.array_size), decl.line)
                self.arrays[decl.name] = base

        self.lower_block(self.definition.body)
        if not self.terminated():
            self.emit(Return(Const(0)), self.definition.line)

        # Any block left unterminated (e.g. after a `break`-only body) gets
        # an explicit return so the function verifies.
        for block in self.function.iter_blocks():
            if block.terminator is None:
                block.append(Return(Const(0)))
        return self.function

    # ------------------------------------------------------------------ #
    # Statements.
    # ------------------------------------------------------------------ #
    def lower_block(self, block: Block) -> None:
        for statement in block.statements:
            if self.terminated():
                return  # unreachable code after return/break: drop it
            self.lower_statement(statement)

    def lower_statement(self, node) -> None:
        if isinstance(node, VarDecl):
            if node.initializer is not None:
                value = self.lower_expression(node.initializer)
                slot = self.scalars.get(node.name)
                if slot is None:
                    raise LoweringError(
                        f"line {node.line}: cannot initialize array {node.name!r} directly"
                    )
                self.emit(Store(Var(slot), value), node.line)
        elif isinstance(node, AstAssign):
            value = self.lower_expression(node.value)
            slot = self.scalars.get(node.name)
            if slot is None:
                raise LoweringError(f"line {node.line}: assignment to undeclared {node.name!r}")
            self.emit(Store(Var(slot), value), node.line)
        elif isinstance(node, IndexAssign):
            base = self._array_base(node.array, node.line)
            index = self.lower_expression(node.index)
            value = self.lower_expression(node.value)
            address = self.fresh_temp()
            self.emit(Assign(address, BinOp("add", base, index)), node.line)
            self.emit(Store(Var(address), value), node.line)
        elif isinstance(node, If):
            self.lower_if(node)
        elif isinstance(node, While):
            self.lower_while(node)
        elif isinstance(node, For):
            self.lower_for(node)
        elif isinstance(node, AstReturn):
            value = self.lower_expression(node.value) if node.value is not None else Const(0)
            self.emit(Return(value), node.line)
        elif isinstance(node, Break):
            if not self.loop_stack:
                raise LoweringError(f"line {node.line}: break outside a loop")
            self.emit(Jump(self.loop_stack[-1][1]), node.line)
        elif isinstance(node, Continue):
            if not self.loop_stack:
                raise LoweringError(f"line {node.line}: continue outside a loop")
            self.emit(Jump(self.loop_stack[-1][0]), node.line)
        elif isinstance(node, ExprStatement):
            self.lower_expression(node.expression)
        elif isinstance(node, Block):
            self.lower_block(node)
        else:  # pragma: no cover - exhaustive over the AST
            raise LoweringError(f"unsupported statement {node!r}")

    def lower_if(self, node: If) -> None:
        condition = self.lower_expression(node.condition)
        then_label = self.new_block("if.then")
        merge_label = self.new_block("if.end")
        else_label = self.new_block("if.else") if node.else_block else merge_label
        self.emit(Branch(condition, then_label, else_label), node.line)

        self.set_block(then_label)
        self.lower_block(node.then_block)
        if not self.terminated():
            self.emit(Jump(merge_label), node.line)

        if node.else_block is not None:
            self.set_block(else_label)
            self.lower_block(node.else_block)
            if not self.terminated():
                self.emit(Jump(merge_label), node.line)

        self.set_block(merge_label)

    def lower_while(self, node: While) -> None:
        cond_label = self.new_block("while.cond")
        body_label = self.new_block("while.body")
        end_label = self.new_block("while.end")
        self.emit(Jump(cond_label), node.line)

        self.set_block(cond_label)
        condition = self.lower_expression(node.condition)
        self.emit(Branch(condition, body_label, end_label), node.line)

        self.loop_stack.append((cond_label, end_label))
        self.set_block(body_label)
        self.lower_block(node.body)
        if not self.terminated():
            self.emit(Jump(cond_label), node.line)
        self.loop_stack.pop()

        self.set_block(end_label)

    def lower_for(self, node: For) -> None:
        if node.init is not None:
            self.lower_statement(node.init)
        cond_label = self.new_block("for.cond")
        body_label = self.new_block("for.body")
        step_label = self.new_block("for.step")
        end_label = self.new_block("for.end")
        self.emit(Jump(cond_label), node.line)

        self.set_block(cond_label)
        condition = (
            self.lower_expression(node.condition)
            if node.condition is not None
            else Const(1)
        )
        self.emit(Branch(condition, body_label, end_label), node.line)

        self.loop_stack.append((step_label, end_label))
        self.set_block(body_label)
        self.lower_block(node.body)
        if not self.terminated():
            self.emit(Jump(step_label), node.line)
        self.loop_stack.pop()

        self.set_block(step_label)
        if node.update is not None:
            self.lower_statement(node.update)
        if not self.terminated():
            self.emit(Jump(cond_label), node.line)

        self.set_block(end_label)

    # ------------------------------------------------------------------ #
    # Expressions.
    # ------------------------------------------------------------------ #
    def _array_base(self, name: str, line: int) -> Expr:
        if name in self.arrays:
            return Var(self.arrays[name])
        if name in self.scalars:
            # Indexing through a scalar: the scalar holds a base address
            # (e.g. an array passed as a parameter).
            temp = self.fresh_temp()
            self.emit(Load(temp, Var(self.scalars[name])), line)
            return Var(temp)
        raise LoweringError(f"line {line}: unknown array {name!r}")

    def lower_expression(self, node: Expression) -> Expr:
        if isinstance(node, IntLiteral):
            return Const(node.value)
        if isinstance(node, Name):
            slot = self.scalars.get(node.name)
            if slot is None:
                if node.name in self.arrays:
                    return Var(self.arrays[node.name])
                raise LoweringError(f"line {node.line}: undeclared variable {node.name!r}")
            temp = self.fresh_temp()
            self.emit(Load(temp, Var(slot)), node.line)
            return Var(temp)
        if isinstance(node, Index):
            base = self._array_base(node.array, node.line)
            index = self.lower_expression(node.index)
            address = self.fresh_temp()
            self.emit(Assign(address, BinOp("add", base, index)), node.line)
            value = self.fresh_temp()
            self.emit(Load(value, Var(address)), node.line)
            return Var(value)
        if isinstance(node, Unary):
            operand = self.lower_expression(node.operand)
            op = "neg" if node.op == "-" else "not"
            temp = self.fresh_temp()
            self.emit(Assign(temp, UnOp(op, operand)), node.line)
            return Var(temp)
        if isinstance(node, Binary):
            lhs = self.lower_expression(node.lhs)
            rhs = self.lower_expression(node.rhs)
            temp = self.fresh_temp()
            if node.op in ("&&", "||"):
                lhs_bool = UnOp("not", UnOp("not", lhs))
                rhs_bool = UnOp("not", UnOp("not", rhs))
                op = "and" if node.op == "&&" else "or"
                self.emit(Assign(temp, BinOp(op, lhs_bool, rhs_bool)), node.line)
            else:
                self.emit(Assign(temp, BinOp(_BINOP_MAP[node.op], lhs, rhs)), node.line)
            return Var(temp)
        if isinstance(node, CallExpr):
            args = [self.lower_expression(arg) for arg in node.args]
            temp = self.fresh_temp()
            self.emit(Call(temp, node.callee, args), node.line)
            return Var(temp)
        raise LoweringError(f"unsupported expression {node!r}")


def _collect_declarations(block: Block) -> List[VarDecl]:
    """All variable declarations in a statement tree, in source order."""
    found: List[VarDecl] = []

    def visit(node) -> None:
        if isinstance(node, VarDecl):
            found.append(node)
        elif isinstance(node, Block):
            for statement in node.statements:
                visit(statement)
        elif isinstance(node, If):
            visit(node.then_block)
            if node.else_block is not None:
                visit(node.else_block)
        elif isinstance(node, While):
            visit(node.body)
        elif isinstance(node, For):
            if node.init is not None:
                visit(node.init)
            if node.update is not None:
                visit(node.update)
            visit(node.body)

    visit(block)
    return found


def lower_function(definition: FunctionDef) -> Function:
    """Lower one function definition to alloca-form IR (no promotion)."""
    return _FunctionLowering(definition).lower()


def lower_program(program: Program, module_name: str = "minic") -> Module:
    """Lower a whole MiniC program to alloca-form IR (no promotion)."""
    module = Module(module_name)
    for definition in program.functions:
        module.add(lower_function(definition))
    return module


def compile_program(source: str, *, promote: bool = True, module_name: str = "minic") -> Module:
    """Parse, lower and (optionally) promote a MiniC program.

    With ``promote=True`` (the default) the result is the paper's
    ``f_base`` form: SSA registers with debug bindings, ready to be cloned
    and optimized by the OSR-aware pipeline.
    """
    module = lower_program(parse_minic(source), module_name)
    if promote:
        for function in module:
            promote_memory_to_registers(function)
    return module


def compile_function(source: str, name: Optional[str] = None, *, promote: bool = True) -> Function:
    """Compile MiniC source containing (at least) one function; return one of them."""
    module = compile_program(source, promote=promote)
    if name is not None:
        return module.get(name)
    if len(module) != 1:
        raise LoweringError(
            "compile_function needs a single-function source or an explicit name"
        )
    return next(iter(module))
