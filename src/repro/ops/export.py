"""Event and metrics egress: JSON-lines sinks and the scrape endpoint.

Two transports move the typed event stream out of the process:

* :class:`JsonLinesSink` — a bus subscriber appending one
  :func:`~repro.engine.events.event_as_dict` object per line.  This is
  the fleet-worker transport: each worker writes its own file (no
  cross-process locking needed) and ``repro top --follow`` or a later
  :class:`~repro.ops.metrics.MetricsExporter` replays it with
  :func:`read_events`.
* :class:`MetricsServer` — a stdlib :class:`ThreadingHTTPServer`
  serving an attached exporter's Prometheus text format on
  ``/metrics`` and its JSON twin on ``/metrics.json``.  Scrapes read
  the exporter's folded state; they never touch the engine's hot path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import IO, Iterator, Optional, Union

from ..engine.events import RuntimeEvent, event_as_dict, event_from_dict
from .metrics import MetricsExporter

__all__ = [
    "JsonLinesSink",
    "read_events",
    "MetricsServer",
    "serve_metrics",
]


class JsonLinesSink:
    """A bus subscriber writing one JSON object per event line.

    Lines are flushed as they are written so a live ``tail -f`` (or
    ``repro top --follow``) sees events promptly; the per-sink lock
    keeps concurrently published events on separate lines.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open("a")
        self._lock = threading.Lock()

    def __call__(self, event: RuntimeEvent) -> None:
        line = json.dumps(event_as_dict(event), sort_keys=True)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(
    path: Union[str, Path], *, start: int = 0
) -> Iterator[RuntimeEvent]:
    """Replay a JSON-lines sink as typed events, skipping ``start`` lines.

    Unknown kinds or fields raise (via
    :func:`~repro.engine.events.event_from_dict`): a stream a newer
    engine wrote must fail loudly, not fold half an event.
    """
    with Path(path).open() as handle:
        for index, line in enumerate(handle):
            if index < start or not line.strip():
                continue
            yield event_from_dict(json.loads(line))


class _MetricsHandler(BaseHTTPRequestHandler):
    exporter: MetricsExporter  # installed by MetricsServer

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.exporter.render().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = self.exporter.render_json().encode()
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (serve /metrics or /metrics.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay silent on stderr


class MetricsServer:
    """A daemon-threaded HTTP scrape endpoint over one exporter."""

    def __init__(
        self,
        exporter: MetricsExporter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("_BoundMetricsHandler", (_MetricsHandler,), {"exporter": exporter})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_metrics(
    exporter: MetricsExporter, host: str = "127.0.0.1", port: int = 0
) -> MetricsServer:
    """Start a scrape endpoint; ``port=0`` binds an ephemeral port."""
    return MetricsServer(exporter, host, port).start()
