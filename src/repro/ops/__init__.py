"""Operations: the ``repro`` operator CLI and streaming metrics.

Everything an operator (or CI job) touches without writing Python:

* :mod:`repro.ops.metrics` — :class:`MetricsExporter`, an event-bus
  subscriber folding typed :class:`~repro.engine.events.RuntimeEvent`
  streams into named counters, gauges and a compile-latency histogram,
  in exact agreement with :meth:`Engine.stats`;
* :mod:`repro.ops.export` — the egress transports: a JSON-lines event
  sink per fleet worker and a stdlib HTTP endpoint serving the
  Prometheus text format on ``/metrics`` (JSON twin on
  ``/metrics.json``);
* :mod:`repro.ops.render` — ``--format table|csv|json`` rendering,
  stdlib only;
* :mod:`repro.ops.cli` — the ``repro`` click command: ``run``,
  ``inspect``, ``store list/export/import/gc``, ``fleet``, ``bench``,
  ``top``.
"""

from .export import JsonLinesSink, MetricsServer, read_events, serve_metrics
from .metrics import (
    DEFAULT_BUCKETS,
    STAT_COUNTERS,
    STAT_GAUGES,
    Counter,
    Gauge,
    Histogram,
    MetricsExporter,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from .render import FORMATS, format_rows

__all__ = [
    "MetricsExporter",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "STAT_COUNTERS",
    "STAT_GAUGES",
    "render_prometheus",
    "parse_prometheus",
    "JsonLinesSink",
    "read_events",
    "MetricsServer",
    "serve_metrics",
    "FORMATS",
    "format_rows",
]
