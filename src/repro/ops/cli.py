"""``repro`` — the operator command line over the adaptive engine.

One binary for the whole operational surface: run a MiniC program (or a
named workload) on either backend with live event tailing and a scrape
endpoint, inspect a function's tier state and version multiverse, manage
the persistent artifact store, drive the benchmark recorder, and watch a
fleet's event stream fold into metrics in real time.  Every command
renders through :func:`repro.ops.render.format_rows`, so
``--format table|csv|json`` behaves identically everywhere.

Installed as a console script (``[project.scripts]`` in
``pyproject.toml``); ``python -m repro.ops.cli`` works too.
"""

from __future__ import annotations

import importlib.util
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import click

from .. import __version__
from ..engine.config import EngineConfig
from ..store.artifacts import FunctionArtifact, StoreError
from ..store.persist import ArtifactStore
from .export import JsonLinesSink, serve_metrics
from .metrics import MetricsExporter
from .render import FORMATS, format_rows

__all__ = ["main"]


# --------------------------------------------------------------------- #
# Shared option plumbing.
# --------------------------------------------------------------------- #
def format_option(command):
    return click.option(
        "--format",
        "fmt",
        type=click.Choice(FORMATS),
        default="table",
        show_default=True,
        help="Output rendering.",
    )(command)


def config_options(command):
    command = click.option(
        "--backend",
        type=click.Choice(["interp", "compiled"]),
        default=None,
        help="Optimized-tier backend (default: REPRO_BACKEND or interp).",
    )(command)
    command = click.option(
        "--set",
        "overrides",
        multiple=True,
        metavar="KEY=VALUE",
        help="Override any EngineConfig field (repeatable), e.g. "
        "--set hotness_threshold=2 --set max_versions=1.",
    )(command)
    return command


def _build_config(backend: Optional[str], overrides: Sequence[str]) -> EngineConfig:
    kwargs: Dict[str, object] = {}
    for item in overrides:
        key, sep, raw = item.partition("=")
        if not sep:
            raise click.BadParameter(f"expected KEY=VALUE, got {item!r}", param_hint="--set")
        try:
            kwargs[key] = json.loads(raw)
        except ValueError:
            kwargs[key] = raw
    if backend is not None:
        kwargs["opt_backend"] = backend
    try:
        return EngineConfig.from_env(**kwargs)
    except (TypeError, ValueError) as exc:
        raise click.ClickException(f"invalid engine config: {exc}")


def _parse_args(text: Optional[str]) -> List[int]:
    if not text:
        return []
    try:
        return [int(chunk) for chunk in text.replace(",", " ").split()]
    except ValueError as exc:
        raise click.BadParameter(str(exc), param_hint="--args")


def _workload_source(name: str) -> str:
    from ..workloads import (
        POLYMORPHIC_NAMES,
        SPECULATIVE_NAMES,
        polymorphic_source,
        speculative_source,
    )

    if name in SPECULATIVE_NAMES:
        return speculative_source(name)
    if name in POLYMORPHIC_NAMES:
        return polymorphic_source(name)
    raise click.BadParameter(
        f"unknown workload {name!r}; choose from "
        f"{tuple(SPECULATIVE_NAMES) + tuple(POLYMORPHIC_NAMES)}",
        param_hint="--workload",
    )


def _workload_calls(
    name: str, calls: int, violate_every: int
) -> Iterator[Tuple[List[int], object]]:
    """Per-call ``(args, memory)`` for a named workload.

    Speculative kernels run the warm regime, breaking their speculated
    fact every ``violate_every``-th call; polymorphic kernels alternate
    entry-profile phases in blocks of eight calls so the multiverse
    sees each specialization repeatedly.
    """
    from ..workloads import (
        SPECULATIVE_NAMES,
        polymorphic_arguments,
        polymorphic_phases,
        speculative_arguments,
    )

    if name in SPECULATIVE_NAMES:
        for index in range(calls):
            violate = violate_every > 0 and (index + 1) % violate_every == 0
            yield speculative_arguments(name, violate=violate)
    else:
        phases = polymorphic_phases(name)
        for index in range(calls):
            yield polymorphic_arguments(name, phases[(index // 8) % len(phases)])


def _open_engine(source: str, store: Optional[str], config: EngineConfig, on_stale: str):
    from ..engine.facade import Engine

    try:
        if store is not None and (Path(store) / "store.json").exists():
            return Engine.open(source, store, config=config, on_stale=on_stale)
        return Engine.from_source(source, config=config)
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")


def _tail_printer(event) -> None:
    from ..engine.events import event_as_dict

    data = event_as_dict(event)
    detail = " ".join(
        f"{key}={value}"
        for key, value in data.items()
        if key not in ("kind", "function") and value not in (None, "")
    )
    click.echo(f"[{data['kind']}] @{data['function']} {detail}".rstrip(), err=True)


SUMMARY_COLUMNS = (
    "function",
    "tier",
    "calls",
    "compiled",
    "speculative",
    "versions",
    "guard_failures",
    "deopts",
    "dispatched_osr",
    "continuations",
    "entry_dispatches",
)


def _summary_rows(engine, restored: Sequence[str] = ()) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name in sorted(engine.function_names()):
        stats = engine.stats(name)
        rows.append(
            {
                "function": name,
                "tier": str(engine.function(name).tier),
                "calls": stats.calls,
                "compiled": bool(stats.compiled),
                "speculative": bool(stats.speculative),
                "versions": stats.versions,
                "guard_failures": stats.guard_failures,
                "deopts": stats.osr_exits,
                "dispatched_osr": stats.dispatch_hits,
                "continuations": stats.continuations,
                "entry_dispatches": stats.entry_dispatches,
                "restored": name in restored,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# The command tree.
# --------------------------------------------------------------------- #
@click.group()
@click.version_option(version=__version__, prog_name="repro")
def main() -> None:
    """Operate the adaptive OSR engine: run, inspect, persist, measure."""


@main.command()
@click.argument("source", type=click.Path(exists=True, dir_okay=False), required=False)
@click.option("--workload", default=None, help="Run a named workload kernel instead of a file.")
@click.option("--entry", default=None, help="Function to call (default: sole/first function).")
@click.option("--args", "args_text", default=None, help="Call arguments, e.g. '3,20'.")
@click.option("--calls", default=12, show_default=True, help="Number of calls to serve.")
@click.option(
    "--violate-every",
    default=0,
    show_default=True,
    help="Workload mode: break the speculated fact every Nth call.",
)
@click.option("--store", "store_path", default=None, help="Artifact store to warm-start from and save into.")
@click.option("--save/--no-save", default=True, show_default=True, help="Publish to --store after the run.")
@click.option(
    "--on-stale",
    type=click.Choice(["error", "skip"]),
    default="error",
    show_default=True,
    help="Stale store artifacts: fail loudly, or start those functions cold.",
)
@click.option("--tail", is_flag=True, help="Print every runtime event to stderr as it happens.")
@click.option("--metrics-port", default=None, type=int, help="Serve /metrics on this port (0 = ephemeral).")
@click.option("--hold", default=0.0, show_default=True, help="Seconds to keep serving metrics after the run.")
@click.option("--events-jsonl", default=None, type=click.Path(dir_okay=False), help="Append events to a JSON-lines sink.")
@config_options
@format_option
def run(
    source: Optional[str],
    workload: Optional[str],
    entry: Optional[str],
    args_text: Optional[str],
    calls: int,
    violate_every: int,
    store_path: Optional[str],
    save: bool,
    on_stale: str,
    tail: bool,
    metrics_port: Optional[int],
    hold: float,
    events_jsonl: Optional[str],
    backend: Optional[str],
    overrides: Sequence[str],
    fmt: str,
) -> None:
    """Execute a MiniC SOURCE file (or --workload kernel) on the engine."""
    if (source is None) == (workload is None):
        raise click.UsageError("provide exactly one of SOURCE or --workload")
    config = _build_config(backend, overrides)
    text = Path(source).read_text() if source else _workload_source(workload)
    engine = _open_engine(text, store_path, config, on_stale)
    exporter: Optional[MetricsExporter] = None
    server = None
    sink: Optional[JsonLinesSink] = None
    try:
        if tail:
            engine.subscribe(_tail_printer)
        if events_jsonl is not None:
            sink = JsonLinesSink(events_jsonl)
            engine.subscribe(sink)
        if metrics_port is not None:
            exporter = MetricsExporter()
            exporter.attach(engine)
            server = serve_metrics(exporter, port=metrics_port)
            click.echo(f"metrics: {server.url}", err=True)

        if workload is not None:
            entry = entry or workload
            last = None
            for call_args, memory in _workload_calls(workload, calls, violate_every):
                last = engine.call(entry, call_args, memory=memory).value
        else:
            entry = entry or engine.function_names()[0]
            if entry not in engine:
                raise click.ClickException(
                    f"no function {entry!r}; registered: {engine.function_names()}"
                )
            call_args = _parse_args(args_text)
            last = None
            for _ in range(calls):
                last = engine.call(entry, call_args).value
        engine.wait_for_compilation(timeout=30.0)

        if store_path is not None and save:
            try:
                engine.save(ArtifactStore(store_path))
            except StoreError as exc:
                raise click.ClickException(f"{type(exc).__name__}: {exc}")

        rows = _summary_rows(engine, engine.restored_functions)
        for row in rows:
            row["last_value"] = last if row["function"] == entry else None
        click.echo(
            format_rows(
                rows,
                SUMMARY_COLUMNS + ("restored", "last_value"),
                fmt,
                title=f"repro run — {entry} × {calls} calls",
            )
        )
        if server is not None and hold > 0:
            time.sleep(hold)
    finally:
        if server is not None:
            server.close()
        if exporter is not None:
            exporter.close()
        if sink is not None:
            sink.close()
        engine.close()


@main.command()
@click.argument("source", type=click.Path(exists=True, dir_okay=False), required=False)
@click.option("--workload", default=None, help="Inspect a named workload kernel instead of a file.")
@click.option("--store", "store_path", default=None, help="Warm-start from this artifact store first.")
@click.option(
    "--on-stale",
    type=click.Choice(["error", "skip"]),
    default="error",
    show_default=True,
)
@click.option("--entry", default=None, help="Function to warm with --calls.")
@click.option("--args", "args_text", default=None, help="Arguments for the warm-up calls.")
@click.option("--calls", default=0, show_default=True, help="Warm-up calls before inspecting.")
@click.option(
    "--show",
    type=click.Choice(
        ["summary", "versions", "guards", "continuations", "stats", "profile"]
    ),
    default="summary",
    show_default=True,
    help="Which section of the engine state to render.",
)
@config_options
@format_option
def inspect(
    source: Optional[str],
    workload: Optional[str],
    store_path: Optional[str],
    on_stale: str,
    entry: Optional[str],
    args_text: Optional[str],
    calls: int,
    show: str,
    backend: Optional[str],
    overrides: Sequence[str],
    fmt: str,
) -> None:
    """Per-function tier state, version tables and profiles."""
    if (source is None) == (workload is None):
        raise click.UsageError("provide exactly one of SOURCE or --workload")
    config = _build_config(backend, overrides)
    text = Path(source).read_text() if source else _workload_source(workload)
    engine = _open_engine(text, store_path, config, on_stale)
    try:
        if calls:
            if workload is not None:
                entry = entry or workload
                for call_args, memory in _workload_calls(workload, calls, 0):
                    engine.call(entry, call_args, memory=memory)
            else:
                entry = entry or engine.function_names()[0]
                call_args = _parse_args(args_text)
                for _ in range(calls):
                    engine.call(entry, call_args)
            engine.wait_for_compilation(timeout=30.0)

        rows: List[Dict[str, object]]
        if show == "summary":
            columns = SUMMARY_COLUMNS + ("restored",)
            rows = _summary_rows(engine, engine.restored_functions)
        elif show == "versions":
            columns = (
                "function",
                "key",
                "speculative",
                "guards",
                "inlined_frames",
                "hits",
                "dispatched",
                "guard_failures",
            )
            rows = []
            for name in sorted(engine.function_names()):
                detail = engine.runtime.introspect(name)
                for version in detail["versions"]:
                    failures = ",".join(
                        f"{point}:{count}"
                        for point, count in sorted(version["guard_failures"].items())
                    )
                    rows.append(
                        {
                            "function": name,
                            "key": version["key"],
                            "speculative": version["speculative"],
                            "guards": version["guards"],
                            "inlined_frames": version["inlined_frames"],
                            "hits": version["hits"],
                            "dispatched": version["dispatched"],
                            "guard_failures": failures or None,
                        }
                    )
        elif show == "guards":
            columns = (
                "function",
                "key",
                "point",
                "status",
                "failures",
                "obligations",
            )
            rows = []
            for name in sorted(engine.function_names()):
                detail = engine.runtime.introspect(name)
                for version in detail["versions"]:
                    violated = {}
                    for violation in version["soundness_violations"]:
                        violated.setdefault(violation["point"], []).append(
                            violation["obligation"]
                        )
                    for point, status in sorted(
                        version["guard_obligations"].items()
                    ):
                        failed = violated.get(point, []) + violated.get(None, [])
                        rows.append(
                            {
                                "function": name,
                                "key": version["key"],
                                "point": point,
                                "status": status,
                                "failures": version["guard_failures"].get(
                                    point, 0
                                ),
                                "obligations": ",".join(failed) or None,
                            }
                        )
        elif show == "continuations":
            columns = ("function", "key", "point", "live", "hits", "capacity")
            rows = []
            for name in sorted(engine.function_names()):
                detail = engine.runtime.introspect(name)
                for continuation in detail["continuations"]:
                    rows.append(
                        {
                            "function": name,
                            "key": continuation["key"],
                            "point": continuation["point"],
                            "live": ",".join(continuation["live"]),
                            "hits": continuation["hits"],
                            "capacity": detail["continuation_capacity"],
                        }
                    )
        elif show == "stats":
            sample = engine.stats(engine.function_names()[0]).as_dict()
            columns = ("function",) + tuple(sample)
            rows = [
                {"function": name, **engine.stats(name).as_dict()}
                for name in sorted(engine.function_names())
            ]
        else:  # profile
            columns = ("function", "field", "value")
            rows = []
            for name in sorted(engine.function_names()):
                profile = engine.function(name).profile
                for field_name, value in sorted(profile.as_json().items()):
                    rows.append(
                        {
                            "function": name,
                            "field": field_name,
                            "value": json.dumps(value, sort_keys=True),
                        }
                    )
        click.echo(format_rows(rows, columns, fmt, title=f"repro inspect — {show}"))
    finally:
        engine.close()


# --------------------------------------------------------------------- #
# Static lint: the soundness verifier's advisory surface.
# --------------------------------------------------------------------- #
def _lint_row(source: str, finding) -> Dict[str, object]:
    return {
        "source": source,
        "function": finding.function,
        "rule": finding.rule,
        "point": finding.point,
        "detail": finding.detail,
    }


def _lint_minic_file(path: Path) -> List[Dict[str, object]]:
    from ..analysis.soundness import lint_function
    from ..frontend.lowering import compile_program

    try:
        module = compile_program(path.read_text())
    except Exception as exc:  # frontend errors are findings, not crashes
        return [
            {
                "source": str(path),
                "function": None,
                "rule": "frontend",
                "point": None,
                "detail": f"{type(exc).__name__}: {exc}",
            }
        ]
    rows: List[Dict[str, object]] = []
    for function in module:
        rows.extend(_lint_row(str(path), f) for f in lint_function(function))
    return rows


def _lint_python_file(path: Path) -> List[Dict[str, object]]:
    """Syntax-check generated Python (codegen goldens under tests/golden/)."""
    try:
        compile(path.read_text(), str(path), "exec")
    except SyntaxError as exc:
        return [
            {
                "source": str(path),
                "function": None,
                "rule": "python-syntax",
                "point": f"{exc.lineno}:{exc.offset}",
                "detail": exc.msg or "syntax error",
            }
        ]
    return []


def _lint_store_dir(root: Path) -> List[Dict[str, object]]:
    from ..analysis.soundness import lint_tier_payload

    artifact_store = _open_store(str(root))
    rows: List[Dict[str, object]] = []
    try:
        for key in artifact_store.keys():
            artifact = artifact_store.get(key.function, key.config_fingerprint)
            if artifact is None:
                continue
            payloads = (
                [item["tier"] for item in artifact.tier_versions]
                if artifact.tier_versions
                else ([artifact.tier] if artifact.tier is not None else [])
            )
            for payload in payloads:
                rows.extend(
                    _lint_row(str(root), f)
                    for f in lint_tier_payload(payload, key.function)
                )
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")
    return rows


def _lint_path(path: Path) -> List[Dict[str, object]]:
    if path.is_dir():
        if (path / "store.json").exists():
            return _lint_store_dir(path)
        rows: List[Dict[str, object]] = []
        for child in sorted(path.rglob("*")):
            if child.suffix == ".mc":
                rows.extend(_lint_minic_file(child))
            elif child.suffix == ".py" or child.name.endswith(".py.txt"):
                rows.extend(_lint_python_file(child))
        return rows
    if path.suffix == ".mc":
        return _lint_minic_file(path)
    if path.suffix == ".py" or path.name.endswith(".py.txt"):
        return _lint_python_file(path)
    if path.name == "store.json":
        return _lint_store_dir(path.parent)
    raise click.BadParameter(
        f"cannot lint {path}: expected a .mc source, a .py/.py.txt file, "
        f"an artifact store, or a directory of those"
    )


def _lint_workload(name: str, calls: int, config: EngineConfig) -> List[Dict[str, object]]:
    """Warm a named workload and lint every version the engine published."""
    from ..analysis.soundness import lint_version
    from ..engine.facade import Engine

    engine = Engine.from_source(_workload_source(name), config=config)
    rows: List[Dict[str, object]] = []
    try:
        for call_args, memory in _workload_calls(name, calls, 0):
            engine.call(name, call_args, memory=memory)
        engine.wait_for_compilation(timeout=30.0)
        for fn_name in engine.function_names():
            state = engine.runtime.functions[fn_name]
            with state.lock:
                entries = [(e.key, e.version) for e in state.versions]
            for key, version in entries:
                rows.extend(
                    _lint_row(f"workload:{name}", f)
                    for f in lint_version(version, key=key, function_name=fn_name)
                )
    finally:
        engine.close()
    return rows


def _lint_benchmarks() -> List[Dict[str, object]]:
    """Build and lint a speculative version of each benchmark loop kernel."""
    from ..analysis.soundness import lint_version
    from ..core.osr_trans import OSRTransDriver
    from ..ir.interp import Interpreter
    from ..passes import speculative_pipeline
    from ..vm.profile import ValueProfile
    from ..vm.runtime import CompiledVersion
    from ..workloads import (
        LOOP_KERNEL_NAMES,
        benchmark_arguments,
        benchmark_function,
    )

    rows: List[Dict[str, object]] = []
    for name in LOOP_KERNEL_NAMES:
        function = benchmark_function(name)
        profile = ValueProfile()
        interp = Interpreter(profiler=profile)
        for _ in range(6):
            args, memory = benchmark_arguments(name)
            interp.run(function, args, memory=memory)
        pair = OSRTransDriver(
            speculative_pipeline(profile.function(name), min_samples=2)
        ).run(function)
        plans, _uncovered = pair.deopt_plans()
        keep_alive = frozenset().union(
            *(plan.keep_alive() for plan in plans.values())
        ) if plans else frozenset()
        version = CompiledVersion(
            pair=pair,
            plans=plans,
            forward_mapping=pair.forward_mapping(),
            keep_alive=keep_alive,
            speculative=bool(pair.guard_points()),
        )
        rows.extend(
            _lint_row(f"benchmark:{name}", f)
            for f in lint_version(version, function_name=name)
        )
    return rows


LINT_COLUMNS = ("source", "function", "rule", "point", "detail")


@main.command()
@click.argument("paths", nargs=-1, type=click.Path(exists=True))
@click.option(
    "--workload",
    "workloads",
    multiple=True,
    help="Warm a named workload kernel and lint its published versions "
    "(repeatable).",
)
@click.option(
    "--benchmarks",
    is_flag=True,
    help="Build and lint speculative versions of the benchmark loop kernels.",
)
@click.option(
    "--calls",
    default=12,
    show_default=True,
    help="Warm-up calls per --workload before linting.",
)
@config_options
@format_option
def lint(
    paths: Sequence[str],
    workloads: Sequence[str],
    benchmarks: bool,
    calls: int,
    backend: Optional[str],
    overrides: Sequence[str],
    fmt: str,
) -> None:
    """Statically lint sources, stores, workloads and benchmark kernels.

    PATHS may be MiniC sources (.mc), generated-Python goldens
    (.py/.py.txt), artifact store directories, or directories of any of
    those.  Every finding of the soundness verifier and the IR lint pack
    (dead guards, unreachable blocks, unused keep-alives, mapping range
    errors) is reported; the exit status is 1 when anything was found.
    """
    if not paths and not workloads and not benchmarks:
        raise click.UsageError(
            "nothing to lint: provide PATHS, --workload, or --benchmarks"
        )
    rows: List[Dict[str, object]] = []
    for raw in paths:
        rows.extend(_lint_path(Path(raw)))
    if workloads or benchmarks:
        config = _build_config(backend, overrides)
        for name in workloads:
            rows.extend(_lint_workload(name, calls, config))
        if benchmarks:
            rows.extend(_lint_benchmarks())
    click.echo(
        format_rows(
            rows,
            LINT_COLUMNS,
            fmt,
            title=f"repro lint — {len(rows)} finding(s)",
        )
    )
    if rows:
        sys.exit(1)


# --------------------------------------------------------------------- #
# Store management.
# --------------------------------------------------------------------- #
def _open_store(root: str, *, create: bool = False) -> ArtifactStore:
    try:
        return ArtifactStore(root, create=create)
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")


@main.group()
def store() -> None:
    """Manage a persistent artifact store."""


@store.command("list")
@click.argument("root", type=click.Path(file_okay=False))
@click.option("--fingerprint", default=None, help="Restrict to one config shard.")
@format_option
def store_list(root: str, fingerprint: Optional[str], fmt: str) -> None:
    """List every stored artifact (function, identity, payload shape)."""
    artifact_store = _open_store(root)
    rows: List[Dict[str, object]] = []
    try:
        for key in artifact_store.keys(fingerprint):
            artifact = artifact_store.get(key.function, key.config_fingerprint)
            if artifact is None:
                continue
            versions = (
                len(artifact.tier_versions)
                if artifact.tier_versions is not None
                else int(artifact.tier is not None)
            )
            rows.append(
                {
                    "function": key.function,
                    "fingerprint": key.config_fingerprint,
                    "base_ir_hash": key.base_ir_hash,
                    "tier": artifact.tier is not None,
                    "versions": versions,
                }
            )
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")
    click.echo(
        format_rows(
            rows,
            ("function", "fingerprint", "base_ir_hash", "tier", "versions"),
            fmt,
            title=f"artifact store {root}",
        )
    )


def _resolve_fingerprint(
    artifact_store: ArtifactStore, function: str, fingerprint: Optional[str]
) -> str:
    if fingerprint is not None:
        return fingerprint
    matches = sorted(
        {
            key.config_fingerprint
            for key in artifact_store.keys()
            if key.function == function
        }
    )
    if not matches:
        raise click.ClickException(f"no artifact for @{function} in {artifact_store.root}")
    if len(matches) > 1:
        raise click.ClickException(
            f"@{function} exists under {len(matches)} config fingerprints "
            f"({', '.join(matches)}); pick one with --fingerprint"
        )
    return matches[0]


@store.command("export")
@click.argument("root", type=click.Path(file_okay=False))
@click.argument("function")
@click.option("--fingerprint", default=None, help="Config shard (required if ambiguous).")
@click.option("--output", "-o", default=None, type=click.Path(dir_okay=False), help="Write to a file instead of stdout.")
def store_export(root: str, function: str, fingerprint: Optional[str], output: Optional[str]) -> None:
    """Export one artifact as JSON (the wire format `store import` reads)."""
    artifact_store = _open_store(root)
    try:
        fingerprint = _resolve_fingerprint(artifact_store, function, fingerprint)
        artifact = artifact_store.get(function, fingerprint)
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")
    if artifact is None:
        raise click.ClickException(f"no artifact for @{function}/{fingerprint} in {root}")
    payload = json.dumps(artifact.as_json(), sort_keys=True, indent=1)
    if output is None:
        click.echo(payload)
    else:
        Path(output).write_text(payload + "\n")
        click.echo(f"exported {artifact.key} -> {output}", err=True)


@store.command("import")
@click.argument("root", type=click.Path(file_okay=False))
@click.argument("artifact_file", type=click.Path(exists=True, dir_okay=False))
@click.option("--merge/--no-merge", default=True, show_default=True, help="Histogram-merge with an existing entry.")
def store_import(root: str, artifact_file: str, merge: bool) -> None:
    """Import an artifact JSON file (as produced by `store export`)."""
    try:
        data = json.loads(Path(artifact_file).read_text())
    except ValueError as exc:
        raise click.ClickException(f"not valid JSON: {artifact_file}: {exc}")
    artifact_store = _open_store(root, create=True)
    try:
        artifact = FunctionArtifact.from_json(data)
        key = artifact_store.put(artifact, merge=merge)
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")
    click.echo(f"imported {key}")


@store.command("gc")
@click.argument("root", type=click.Path(file_okay=False))
@click.option("--function", default=None, help="Discard entries for this function.")
@click.option("--fingerprint", default=None, help="Discard this config shard's entries.")
@click.option("--keep", default=None, help="Discard every shard EXCEPT this fingerprint.")
@click.option("--dry-run", is_flag=True, help="Only report what would be removed.")
@format_option
def store_gc(
    root: str,
    function: Optional[str],
    fingerprint: Optional[str],
    keep: Optional[str],
    dry_run: bool,
    fmt: str,
) -> None:
    """Garbage-collect store entries by function or config fingerprint."""
    if keep is not None and fingerprint is not None:
        raise click.UsageError("--keep and --fingerprint are mutually exclusive")
    if keep is None and fingerprint is None and function is None:
        raise click.UsageError("select entries with --function, --fingerprint or --keep")
    artifact_store = _open_store(root)
    try:
        if dry_run:
            removed = [
                key
                for key in artifact_store.keys(fingerprint)
                if (function is None or key.function == function)
                and (keep is None or key.config_fingerprint != keep)
            ]
        elif keep is not None:
            removed = []
            for shard in artifact_store.fingerprints():
                if shard != keep:
                    removed.extend(
                        artifact_store.discard(function=function, fingerprint=shard)
                    )
        else:
            removed = artifact_store.discard(function=function, fingerprint=fingerprint)
    except StoreError as exc:
        raise click.ClickException(f"{type(exc).__name__}: {exc}")
    rows = [
        {
            "function": key.function,
            "fingerprint": key.config_fingerprint,
            "base_ir_hash": key.base_ir_hash,
            "removed": not dry_run,
        }
        for key in removed
    ]
    click.echo(
        format_rows(
            rows,
            ("function", "fingerprint", "base_ir_hash", "removed"),
            fmt,
            title=f"store gc {root}" + (" (dry run)" if dry_run else ""),
        )
    )


# --------------------------------------------------------------------- #
# Fleet, benchmarks, live view.
# --------------------------------------------------------------------- #
@main.command()
@click.argument("source", type=click.Path(exists=True, dir_okay=False))
@click.argument("root", type=click.Path(file_okay=False))
@click.option("--entry", required=True, help="Function every call invokes.")
@click.option("--args", "args_text", default=None, help="Arguments for each call.")
@click.option("--calls", default=32, show_default=True, help="Total calls across the fleet.")
@click.option("--workers", default=2, show_default=True)
@click.option("--sync-every", default=0, show_default=True, help="Republish profiles every N calls.")
@click.option("--events-dir", default=None, type=click.Path(file_okay=False), help="Per-worker JSON-lines event sinks.")
@config_options
@format_option
def fleet(
    source: str,
    root: str,
    entry: str,
    args_text: Optional[str],
    calls: int,
    workers: int,
    sync_every: int,
    events_dir: Optional[str],
    backend: Optional[str],
    overrides: Sequence[str],
    fmt: str,
) -> None:
    """Serve a call stream across warm-started workers sharing one store."""
    from ..store.fleet import run_fleet

    config = _build_config(backend, overrides)
    text = Path(source).read_text()
    call_args = _parse_args(args_text)
    try:
        reports = run_fleet(
            text,
            root,
            [(entry, tuple(call_args))] * calls,
            workers=workers,
            sync_every=sync_every,
            config=config,
            events_dir=events_dir,
        )
    except (StoreError, RuntimeError, ValueError) as exc:
        raise click.ClickException(str(exc))
    rows = []
    for report in reports:
        totals = {
            field_name: sum(stats.get(field_name, 0) for stats in report.stats.values())
            for field_name in ("guard_failures", "osr_exits", "entry_dispatches")
        }
        rows.append(
            {
                "worker": report.worker,
                "calls": report.calls,
                "restored": ",".join(report.restored) or None,
                "tier_ups": report.tier_ups,
                "guard_failures": totals["guard_failures"],
                "deopts": totals["osr_exits"],
                "entry_dispatches": totals["entry_dispatches"],
            }
        )
    click.echo(
        format_rows(
            rows,
            (
                "worker",
                "calls",
                "restored",
                "tier_ups",
                "guard_failures",
                "deopts",
                "entry_dispatches",
            ),
            fmt,
            title=f"repro fleet — {workers} workers × {entry}",
        )
    )


@main.command(context_settings={"ignore_unknown_options": True})
@click.option(
    "--script",
    "script_path",
    default=None,
    envvar="REPRO_RECORD_SCRIPT",
    type=click.Path(exists=True, dir_okay=False),
    help="Path to benchmarks/record.py (default: auto-detect).",
)
@click.argument("record_args", nargs=-1, type=click.UNPROCESSED)
@click.pass_context
def bench(ctx: click.Context, script_path: Optional[str], record_args: Tuple[str, ...]) -> None:
    """Forward to the benchmark recorder (benchmarks/record.py)."""
    candidates = [Path(script_path)] if script_path else [
        Path.cwd() / "benchmarks" / "record.py",
        # src/repro/ops/cli.py -> src -> repo root, for editable installs.
        Path(__file__).resolve().parents[3] / "benchmarks" / "record.py",
    ]
    script = next((path for path in candidates if path.is_file()), None)
    if script is None:
        raise click.ClickException(
            "cannot locate benchmarks/record.py; pass --script or set REPRO_RECORD_SCRIPT"
        )
    spec = importlib.util.spec_from_file_location("repro_bench_record", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    ctx.exit(module.main(list(record_args)))


@main.command()
@click.option("--follow", "follow_path", default=None, type=click.Path(exists=True, dir_okay=False), help="Fold a JSON-lines event sink (repro run --events-jsonl, fleet --events-dir).")
@click.option("--url", default=None, help="Scrape a running /metrics.json endpoint instead.")
@click.option("--interval", default=1.0, show_default=True, help="Seconds between frames.")
@click.option("--frames", default=0, show_default=True, help="Stop after N frames (0 = run until interrupted).")
@click.option("--clear/--no-clear", default=True, show_default=True, help="Clear the terminal between frames.")
def top(
    follow_path: Optional[str],
    url: Optional[str],
    interval: float,
    frames: int,
    clear: bool,
) -> None:
    """Live per-function view of the folding metric stream."""
    if (follow_path is None) == (url is None):
        raise click.UsageError("provide exactly one of --follow or --url")
    exporter = MetricsExporter()
    offset = 0
    frame = 0
    while True:
        frame += 1
        if follow_path is not None:
            from .export import read_events

            for event in read_events(follow_path, start=offset):
                offset += 1
                exporter(event)
            functions = {
                name: stats.as_dict()
                for name, stats in exporter.stats_all().items()
            }
            events = exporter.as_dict()["events"]
            source = follow_path
        else:
            import urllib.request

            target = url if url.endswith("/metrics.json") else url.rstrip("/") + "/metrics.json"
            try:
                with urllib.request.urlopen(target, timeout=5) as response:
                    payload = json.loads(response.read().decode())
            except OSError as exc:
                raise click.ClickException(f"scrape failed: {target}: {exc}")
            functions = payload["functions"]
            events = payload.get("events", {})
            source = target
        rows = [
            {
                "function": name,
                "calls": stats.get("calls", 0),
                "compiled": bool(stats.get("compiled")),
                "versions": stats.get("versions", 0),
                "guard_failures": stats.get("guard_failures", 0),
                "deopts": stats.get("osr_exits", 0),
                "dispatched_osr": stats.get("dispatch_hits", 0),
                "continuations": stats.get("continuations", 0),
                "entry_dispatches": stats.get("entry_dispatches", 0),
            }
            for name, stats in sorted(functions.items())
        ]
        if clear and sys.stdout.isatty():
            click.echo("\x1b[2J\x1b[H", nl=False)
        total_events = int(sum(events.values()))
        click.echo(
            format_rows(
                rows,
                (
                    "function",
                    "calls",
                    "compiled",
                    "versions",
                    "guard_failures",
                    "deopts",
                    "dispatched_osr",
                    "continuations",
                    "entry_dispatches",
                ),
                "table",
                title=f"repro top — {source} (frame {frame}, {total_events} events)",
            )
        )
        if events:
            click.echo(
                "events: "
                + "  ".join(f"{kind}={int(count)}" for kind, count in sorted(events.items()))
            )
        if frames and frame >= frames:
            break
        time.sleep(interval)


if __name__ == "__main__":
    main()
