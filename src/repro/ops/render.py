"""Stdlib-only tabular rendering for the operator CLI.

Every ``repro`` command funnels its rows through :func:`format_rows`,
so ``--format table|csv|json`` behaves identically everywhere: the
table is aligned fixed-width text (no third-party dependency), csv is
:mod:`csv`-module output with a header row, and json is a list of
objects keyed by the column names.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["FORMATS", "format_rows"]

FORMATS = ("table", "csv", "json")


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    fmt: str = "table",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (dicts keyed by column name) in one of :data:`FORMATS`.

    ``json`` emits the raw values (so numbers stay numbers and callers
    can pipe into ``jq``); ``table``/``csv`` stringify them.  The title
    only decorates the human-facing table.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}")
    if fmt == "json":
        return json.dumps(
            [{column: row.get(column) for column in columns} for row in rows],
            indent=2,
            default=str,
        )
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow([_cell(row.get(column)) for column in columns])
        return buffer.getvalue().rstrip("\n")

    rendered: List[Dict[str, str]] = [
        {column: _cell(row.get(column)) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        if rendered
        else len(column)
        for column in columns
    }
    numeric = {
        column: bool(rows)
        and all(isinstance(row.get(column), (int, float)) for row in rows)
        for column in columns
    }

    def line(cells: Mapping[str, str]) -> str:
        parts = []
        for column in columns:
            text = cells[column]
            parts.append(
                text.rjust(widths[column]) if numeric[column] else text.ljust(widths[column])
            )
        return "  ".join(parts).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line({column: column for column in columns}))
    out.append("  ".join("-" * widths[column] for column in columns))
    out.extend(line(row) for row in rendered)
    if not rendered:
        out.append("(no rows)")
    return "\n".join(out)
