"""Streaming metrics folded from the engine's typed event bus.

:class:`MetricsExporter` is an :class:`~repro.engine.events.EventBus`
subscriber: every published :class:`~repro.engine.events.RuntimeEvent`
is folded *once*, as it happens, into named counters, gauges and one
latency histogram.  The exporter never polls the engine — warm
steady-state calls publish no events and therefore cost nothing, which
is what keeps the ``subscribed_vs_plain`` overhead gate honest.

Exactness is load-bearing: the per-function transition counters the
exporter serves are *the same fold* the engine's own
:class:`~repro.engine.stats.StatsCollector` performs (the exporter
embeds one), so a Prometheus scrape agrees with
:meth:`Engine.stats` to the last increment.  On top of that shared
fold the exporter keeps the streams only operators want — guard
failures by reason, tier-ups by version key, event totals by kind, and
a compile-latency histogram fed by ``TierUp.compile_seconds``.

``calls`` is deliberately a scrape-time gauge: warm calls emit no
event, so the exporter reads the live call counter from an
:meth:`attach`-ed engine when rendering (and omits the family when it
is fed from a replayed stream with no engine behind it).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.events import (
    GuardFailed,
    OSREntryRejected,
    RuntimeEvent,
    SpeculationRejected,
    TierUp,
    VersionRestored,
)
from ..engine.stats import EngineStats, StatsCollector

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsExporter",
    "STAT_COUNTERS",
    "STAT_GAUGES",
    "DEFAULT_BUCKETS",
    "render_prometheus",
    "parse_prometheus",
]

#: Compile latencies are milliseconds-to-seconds; buckets follow the
#: Prometheus convention of a roughly logarithmic ladder ending in +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts either; integers render without a trailing ".0"
    # so counter samples stay exact-looking in tests and dashboards.
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing, labeled metric family."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self._values: Dict[LabelValues, float] = {}
        self._lock = threading.Lock()

    def inc(self, labels: LabelValues = (), amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._values[labels] = self._values.get(labels, 0) + amount

    def value(self, labels: LabelValues = ()) -> float:
        with self._lock:
            return self._values.get(labels, 0)

    def samples(self) -> List[Tuple[str, LabelValues, float]]:
        with self._lock:
            return [
                (self.name, labels, value)
                for labels, value in sorted(self._values.items())
            ]

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "|".join(labels) if labels else "": value
                for labels, value in sorted(self._values.items())
            }


class Gauge(Counter):
    """A labeled metric family that may move in both directions."""

    kind = "gauge"

    def set(self, labels: LabelValues, value: float) -> None:
        with self._lock:
            self._values[labels] = value

    def inc(self, labels: LabelValues = (), amount: float = 1) -> None:
        with self._lock:
            self._values[labels] = self._values.get(labels, 0) + amount

    def dec(self, labels: LabelValues = (), amount: float = 1) -> None:
        self.inc(labels, -amount)


class Histogram:
    """A labeled cumulative histogram (Prometheus ``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self.buckets = tuple(sorted(buckets))
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}
        self._lock = threading.Lock()

    def observe(self, labels: LabelValues, value: float) -> None:
        with self._lock:
            counts = self._counts.setdefault(labels, [0] * len(self.buckets))
            index = bisect_left(self.buckets, value)
            if index < len(counts):
                counts[index] += 1
            self._sums[labels] = self._sums.get(labels, 0.0) + value
            self._totals[labels] = self._totals.get(labels, 0) + 1

    def samples(self) -> List[Tuple[str, LabelValues, float]]:
        out: List[Tuple[str, LabelValues, float]] = []
        with self._lock:
            for labels in sorted(self._counts):
                cumulative = 0
                for bound, count in zip(self.buckets, self._counts[labels]):
                    cumulative += count
                    out.append(
                        (
                            f"{self.name}_bucket",
                            labels + (_format_value(bound),),
                            cumulative,
                        )
                    )
                out.append(
                    (f"{self.name}_bucket", labels + ("+Inf",), self._totals[labels])
                )
                out.append((f"{self.name}_sum", labels, self._sums[labels]))
                out.append((f"{self.name}_count", labels, self._totals[labels]))
        return out

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                "|".join(labels) if labels else "": {
                    "count": self._totals[labels],
                    "sum": self._sums[labels],
                }
                for labels in sorted(self._totals)
            }


class MetricsRegistry:
    """An ordered collection of metric families with one text renderer."""

    def __init__(self) -> None:
        self._families: List[object] = []

    def register(self, family):
        self._families.append(family)
        return family

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help, labels))

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help, labels))

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help, labels, buckets))

    def families(self) -> List[object]:
        return list(self._families)

    def render(self) -> str:
        return render_prometheus(self._families)


def render_prometheus(families: Sequence[object]) -> str:
    """Render metric families in the text exposition format (0.0.4)."""
    lines: List[str] = []
    for family in families:
        samples = family.samples()
        if not samples:
            continue
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        label_names = family.labels
        for sample_name, label_values, value in samples:
            names = label_names
            if sample_name.endswith("_bucket"):
                names = label_names + ("le",)
            elif len(label_values) < len(label_names):
                names = label_names[: len(label_values)]
            lines.append(
                f"{sample_name}{_render_labels(names, label_values)}"
                f" {_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, Dict[LabelValues, float]]:
    """Parse text-format samples back into ``{name: {labelvalues: value}}``.

    A deliberately small inverse of :func:`render_prometheus` used by
    the scrape tests and ``repro top --url``; label *names* are dropped
    (families here always label in a fixed, documented order).
    """
    out: Dict[str, Dict[LabelValues, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            values: List[str] = []
            for chunk in _split_labels(label_part):
                _, _, raw = chunk.partition("=")
                raw = raw.strip()[1:-1]
                values.append(
                    raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
            labels = tuple(values)
        else:
            name, labels = name_part, ()
        out.setdefault(name, {})[labels] = float(value_part)
    return out


def _split_labels(label_part: str) -> List[str]:
    chunks: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for char in label_part:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        chunks.append("".join(current))
    return chunks


#: ``EngineStats`` counter fields and the metric family each is served
#: as.  The values come straight from the shared fold, so each family
#: equals the corresponding :meth:`Engine.stats` field by construction.
STAT_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    ("osr_entries", "repro_osr_entries_total", "In-flight entries into optimized code (OSR-in)."),
    ("osr_exits", "repro_deopts_total", "Transfers back to the base tier (OSR-out)."),
    ("multiframe_deopts", "repro_multiframe_deopts_total", "Deopts that materialized an inlined virtual call stack."),
    ("invalidations", "repro_invalidations_total", "Versions discarded after refuted speculation."),
    ("dispatch_hits", "repro_dispatched_osr_total", "Guard failures served by a cached continuation."),
    ("dispatch_misses", "repro_dispatch_misses_total", "Guard-failure deopts that missed the continuation cache."),
    ("versions_added", "repro_version_adds_total", "Versions that joined a function's multiverse."),
    ("versions_retired", "repro_version_retirements_total", "Cold versions evicted to honour max_versions."),
    ("entry_dispatches", "repro_entry_dispatches_total", "Calls dispatched among specialized versions."),
)

#: ``EngineStats`` gauge fields (current mechanism state, not counts).
STAT_GAUGES: Tuple[Tuple[str, str, str], ...] = (
    ("compiled", "repro_compiled", "Whether an optimized version is installed (0/1)."),
    ("speculative", "repro_speculative", "Whether the installed version speculates (0/1)."),
    ("guards", "repro_guards", "Guards in the installed version."),
    ("inlined_frames", "repro_inlined_frames", "Inlined frames in the installed version."),
    ("versions", "repro_versions", "Live versions in the function's multiverse."),
    ("continuations", "repro_continuations", "Cached deopt continuations."),
)


class MetricsExporter:
    """Folds the typed event stream into scrape-ready metrics.

    Subscribe it to a bus (or let :meth:`attach` do it) and every event
    is counted exactly once; :meth:`render` serves the Prometheus text
    format and :meth:`as_dict` the JSON twin.  Thread-safe: the embedded
    :class:`StatsCollector` and each family serialize their own updates,
    so concurrent publishers (request threads, the background compile
    worker) never lose an increment.
    """

    def __init__(self) -> None:
        self._collector = StatsCollector()
        self._engine = None
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._lock = threading.Lock()
        # Own-fold families: streams EngineStats does not keep.
        self.tier_ups = Counter(
            "repro_tier_ups_total",
            "Optimized versions built and installed in this process.",
            ("function", "key"),
        )
        self.versions_restored = Counter(
            "repro_versions_restored_total",
            "Compiled versions re-installed from an artifact store.",
            ("function",),
        )
        self.guard_failures = Counter(
            "repro_guard_failures_total",
            "Speculation guards fired in optimized code, by reason.",
            ("function", "reason"),
        )
        self.speculation_rejected = Counter(
            "repro_speculation_rejected_total",
            "Speculative builds discarded for lacking a deopt plan.",
            ("function",),
        )
        self.osr_entries_rejected = Counter(
            "repro_osr_entries_rejected_total",
            "Mid-flight OSR entries refused by a dominating guard.",
            ("function",),
        )
        self.events_total = Counter(
            "repro_events_total",
            "Runtime events published, by kind.",
            ("kind",),
        )
        self.compile_seconds = Histogram(
            "repro_compile_seconds",
            "Wall-clock build latency of optimized versions.",
            ("function",),
        )

    # ------------------------------------------------------------------ #
    # The fold.
    # ------------------------------------------------------------------ #
    def __call__(self, event: RuntimeEvent) -> None:
        self._collector(event)
        self.events_total.inc((event.kind,))
        if isinstance(event, TierUp):
            self.tier_ups.inc((event.function, event.key))
            self.compile_seconds.observe((event.function,), event.compile_seconds)
        elif isinstance(event, VersionRestored):
            self.versions_restored.inc((event.function,))
        elif isinstance(event, GuardFailed):
            self.guard_failures.inc((event.function, event.reason or "unknown"))
        elif isinstance(event, SpeculationRejected):
            self.speculation_rejected.inc((event.function,))
        elif isinstance(event, OSREntryRejected):
            self.osr_entries_rejected.inc((event.function,))

    # ------------------------------------------------------------------ #
    # Engine wiring.
    # ------------------------------------------------------------------ #
    def attach(self, engine) -> Callable[[], None]:
        """Subscribe to ``engine`` and serve its live ``calls`` gauge.

        Returns an unsubscriber (also invoked by :meth:`close`).  One
        exporter observes one engine; attach a fresh exporter per
        engine, the way the CLI does.
        """
        with self._lock:
            if self._engine is not None:
                raise RuntimeError("exporter is already attached to an engine")
            self._engine = engine
            self._unsubscribe = engine.subscribe(self)
        return self.close

    def close(self) -> None:
        with self._lock:
            unsubscribe, self._unsubscribe = self._unsubscribe, None
            self._engine = None
        if unsubscribe is not None:
            unsubscribe()

    # ------------------------------------------------------------------ #
    # Views.
    # ------------------------------------------------------------------ #
    def stats(self, name: str) -> EngineStats:
        """The per-function fold (``calls`` filled from an attached engine)."""
        return self.stats_all().get(name, EngineStats())

    def stats_all(self) -> Dict[str, EngineStats]:
        with self._lock:
            engine = self._engine
        if engine is not None:
            return engine.stats_all()
        return self._collector.functions()

    def families(self) -> List[object]:
        """Every family, stats-mirror gauges/counters materialized fresh."""
        stats = self.stats_all()
        with self._lock:
            engine = self._engine
        families: List[object] = []
        if engine is not None:
            calls = Gauge(
                "repro_calls", "Calls served (live engine gauge).", ("function",)
            )
            for name, per_function in sorted(stats.items()):
                calls.set((name,), per_function.calls)
            families.append(calls)
        for field, metric, help_text in STAT_GAUGES:
            gauge = Gauge(metric, help_text, ("function",))
            for name, per_function in sorted(stats.items()):
                gauge.set((name,), getattr(per_function, field))
            families.append(gauge)
        for field, metric, help_text in STAT_COUNTERS:
            counter = Counter(metric, help_text, ("function",))
            for name, per_function in sorted(stats.items()):
                value = getattr(per_function, field)
                if value:
                    counter.inc((name,), value)
            families.append(counter)
        families.extend(
            [
                self.tier_ups,
                self.versions_restored,
                self.guard_failures,
                self.speculation_rejected,
                self.osr_entries_rejected,
                self.compile_seconds,
                self.events_total,
            ]
        )
        return families

    def render(self) -> str:
        """The Prometheus text exposition (0.0.4) of every family."""
        return render_prometheus(self.families())

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready twin of :meth:`render` for ``/metrics.json``."""
        return {
            "functions": {
                name: stats.as_dict()
                for name, stats in sorted(self.stats_all().items())
            },
            "tier_ups": self.tier_ups.as_dict(),
            "versions_restored": self.versions_restored.as_dict(),
            "guard_failures": self.guard_failures.as_dict(),
            "speculation_rejected": self.speculation_rejected.as_dict(),
            "osr_entries_rejected": self.osr_entries_rejected.as_dict(),
            "events": self.events_total.as_dict(),
            "compile_seconds": self.compile_seconds.as_dict(),
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)
