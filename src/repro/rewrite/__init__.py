"""Rewrite rules with CTL side conditions and the transformation engine."""

from .rule import RewriteRule, RuleApplication
from .rules import (
    FIGURE5_RULES,
    CodeHoisting,
    ConstantPropagation,
    DeadCodeElimination,
)
from .engine import (
    TransformationResult,
    apply_rule,
    apply_rules,
    identity_point_mapping,
)

__all__ = [
    "RewriteRule",
    "RuleApplication",
    "ConstantPropagation",
    "DeadCodeElimination",
    "CodeHoisting",
    "FIGURE5_RULES",
    "TransformationResult",
    "apply_rule",
    "apply_rules",
    "identity_point_mapping",
]
