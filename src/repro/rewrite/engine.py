"""Transformation engine: apply rewrite rules and record what changed.

``TransformationResult`` is the formal-language analogue of the paper's
``apply(p, T) → (p', Δ_pp', Δ_p'p)`` step: it carries the transformed
program, the (identity) point mappings and the list of rule applications
performed.  ``OSR_trans`` consumes it to build forward and backward OSR
mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..formal.program import FormalProgram
from .rule import RewriteRule, RuleApplication

__all__ = ["TransformationResult", "apply_rule", "apply_rules", "identity_point_mapping"]


def identity_point_mapping(program: FormalProgram) -> Dict[int, int]:
    """The Δ mapping of Theorem 4.6: every point maps to itself."""
    return {point: point for point in program.points()}


@dataclass
class TransformationResult:
    """Outcome of applying one or more in-place rewrite rules."""

    original: FormalProgram
    transformed: FormalProgram
    applications: List[RuleApplication] = field(default_factory=list)

    @property
    def forward_points(self) -> Dict[int, int]:
        """Δ_pp': original point → transformed point (identity for in-place rules)."""
        return identity_point_mapping(self.original)

    @property
    def backward_points(self) -> Dict[int, int]:
        """Δ_p'p: transformed point → original point (identity for in-place rules)."""
        return identity_point_mapping(self.transformed)

    def changed_points(self) -> List[int]:
        """Program points whose instruction differs between the two versions."""
        return sorted(
            {
                point
                for application in self.applications
                for point in application.points()
            }
        )

    def __repr__(self) -> str:
        return (
            f"<TransformationResult: {len(self.applications)} applications, "
            f"{len(self.changed_points())} points changed>"
        )


def apply_rule(
    program: FormalProgram,
    rule: RewriteRule,
    *,
    exhaustive: bool = True,
    max_applications: int = 1000,
) -> TransformationResult:
    """Apply a single rule (once or exhaustively) to ``program``."""
    if exhaustive:
        transformed, applications = rule.apply_exhaustively(
            program, max_applications=max_applications
        )
    else:
        step = rule.apply_first(program)
        if step is None:
            transformed, applications = program, []
        else:
            transformed, application = step
            applications = [application]
    return TransformationResult(program, transformed, applications)


def apply_rules(
    program: FormalProgram,
    rules: Sequence[RewriteRule],
    *,
    max_rounds: int = 10,
    max_applications: int = 1000,
) -> TransformationResult:
    """Apply a sequence of rules round-robin until a fixed point.

    Each round runs every rule exhaustively in order; rounds repeat until
    no rule fires (or the round budget is exhausted).  This mirrors how a
    pass pipeline iterates a function to quiescence.
    """
    current = program
    all_applications: List[RuleApplication] = []
    for _ in range(max_rounds):
        fired = False
        for rule in rules:
            current_result = apply_rule(
                current, rule, exhaustive=True, max_applications=max_applications
            )
            if current_result.applications:
                fired = True
                all_applications.extend(current_result.applications)
                current = current_result.transformed
        if not fired:
            break
    return TransformationResult(program, current, all_applications)
