"""The three LVE transformations of Figure 5: CP, DCE and Hoist.

Each rule enumerates candidate bindings of its meta-variables and checks
the side condition with the CTL model checker, exactly as the paper's
transformation engine "based on model checking" would.  All three rules
are in-place (point numbering is preserved), semantics-preserving and
live-variable equivalent; the test suite checks all three properties
empirically and the OSR machinery relies on them.
"""

from __future__ import annotations

from typing import List

from ..ctl.checker import FormalProgramGraph, ModelChecker
from ..ctl.formula import AU, AX, BackAU, EU, Not, TRUE
from ..ctl.predicates import (
    formal_defines,
    formal_point_is,
    formal_stmt,
    formal_trans,
    formal_uses,
)
from ..formal.program import (
    FAssign,
    FSkip,
    FormalProgram,
)
from ..ir.expr import free_vars, is_constant_expr, substitute
from .rule import RewriteRule, RuleApplication

__all__ = [
    "ConstantPropagation",
    "DeadCodeElimination",
    "CodeHoisting",
    "FIGURE5_RULES",
]


class ConstantPropagation(RewriteRule):
    """Figure 5 — constant propagation (CP).

    ``m : x := e[v]  ⟹  x := e[c]``
    if ``conlit(c) ∧ m ⊨ ←A(¬def(v) U stmt(v := c))``

    i.e. the use of ``v`` at ``m`` is only reached by the single constant
    definition ``v := c``, so ``v`` can be replaced by the literal ``c``.
    """

    name = "CP"

    def find_applications(self, program: FormalProgram) -> List[RuleApplication]:
        graph = FormalProgramGraph(program)
        checker = ModelChecker(graph)
        applications: List[RuleApplication] = []

        # Candidate constant definitions v := c.
        constant_defs: List[tuple] = []
        for point in program.points():
            inst = program[point]
            if isinstance(inst, FAssign) and is_constant_expr(inst.expr):
                constant_defs.append((point, inst.dest, inst.expr))

        for m in program.points():
            inst = program[m]
            if not isinstance(inst, FAssign):
                continue
            used = free_vars(inst.expr)
            for def_point, v, c in constant_defs:
                if v not in used or def_point == m:
                    continue
                side_condition = BackAU(
                    Not(formal_defines(program, v)),
                    formal_stmt(program, FAssign(v, c)),
                )
                if not checker.holds_at(m, side_condition):
                    continue
                new_expr = substitute(inst.expr, {v: c})
                if new_expr == inst.expr:
                    continue
                applications.append(
                    RuleApplication(
                        rule_name=self.name,
                        replacements={m: FAssign(inst.dest, new_expr)},
                        description=f"propagate {v} := {c} (from {def_point}) into point {m}",
                    )
                )
        return applications


class DeadCodeElimination(RewriteRule):
    """Figure 5 — dead code elimination (DCE).

    ``m : x := e  ⟹  skip``
    if ``m ⊨ AX ¬E(true U use(x))``

    i.e. no path starting after ``m`` ever uses ``x``, so the assignment
    is dead and can be replaced by ``skip``.
    """

    name = "DCE"

    def find_applications(self, program: FormalProgram) -> List[RuleApplication]:
        graph = FormalProgramGraph(program)
        checker = ModelChecker(graph)
        applications: List[RuleApplication] = []
        for m in program.points():
            inst = program[m]
            if not isinstance(inst, FAssign):
                continue
            side_condition = AX(Not(EU(TRUE, formal_uses(program, inst.dest))))
            if checker.holds_at(m, side_condition):
                applications.append(
                    RuleApplication(
                        rule_name=self.name,
                        replacements={m: FSkip()},
                        description=f"delete dead assignment to {inst.dest} at point {m}",
                    )
                )
        return applications


class CodeHoisting(RewriteRule):
    """Figure 5 — code hoisting (Hoist).

    ``p : skip ⟹ x := e``  and  ``q : x := e ⟹ skip``
    if ``p ⊨ A(¬use(x) U point(q))`` and
    ``q ⊨ ←A((¬def(x) ∨ point(q)) ∧ trans(e) U point(p))``

    i.e. the assignment at ``q`` can be moved up to the ``skip`` slot at
    ``p`` because along every path between them ``x`` is not used, ``x`` is
    not redefined and no constituent of ``e`` changes.
    """

    name = "Hoist"

    def find_applications(self, program: FormalProgram) -> List[RuleApplication]:
        graph = FormalProgramGraph(program)
        checker = ModelChecker(graph)
        applications: List[RuleApplication] = []

        skip_points = [m for m in program.points() if isinstance(program[m], FSkip)]
        assign_points = [m for m in program.points() if isinstance(program[m], FAssign)]

        for q in assign_points:
            assign = program[q]
            assert isinstance(assign, FAssign)
            x, e = assign.dest, assign.expr
            for p in skip_points:
                if p == q:
                    continue
                forward_ok = AU(
                    Not(formal_uses(program, x)),
                    formal_point_is(q),
                )
                backward_ok = BackAU(
                    (Not(formal_defines(program, x)) | formal_point_is(q))
                    & formal_trans(program, e),
                    formal_point_is(p),
                )
                if not checker.holds_at(p, forward_ok):
                    continue
                if not checker.holds_at(q, backward_ok):
                    continue
                applications.append(
                    RuleApplication(
                        rule_name=self.name,
                        replacements={p: FAssign(x, e), q: FSkip()},
                        description=f"hoist '{assign}' from point {q} to point {p}",
                    )
                )
        return applications


#: The rule set of Figure 5, in the order the paper lists them.
FIGURE5_RULES = (ConstantPropagation(), DeadCodeElimination(), CodeHoisting())
