"""Rewrite rules with CTL side conditions (Definitions 2.8 / 2.9).

A rule transforms one or more instructions of a formal program *in place*
(the program keeps its length and point numbering), subject to a side
condition expressed with the CTL predicates of Figure 3.  This matches the
paper's presentation, where the ``apply`` step for such rules returns the
identity mapping between program points (Theorem 4.6).

Rules report *applications*: concrete bindings of their meta-variables to
program objects.  The engine (:mod:`repro.rewrite.engine`) picks
applications, applies them and records which points changed, which is all
``OSR_trans`` needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..formal.program import FormalInstruction, FormalProgram

__all__ = ["RuleApplication", "RewriteRule"]


@dataclass
class RuleApplication:
    """One concrete way a rule can fire.

    ``replacements`` maps program points to the new instruction each will
    receive; ``description`` is a human-readable rendering of the binding
    (useful in experiment logs and test failure messages).
    """

    rule_name: str
    replacements: Dict[int, FormalInstruction]
    description: str = ""

    def points(self) -> List[int]:
        return sorted(self.replacements)


class RewriteRule:
    """Base class for Figure 5-style rewrite rules.

    Subclasses implement :meth:`find_applications`; application is shared.
    A rule must be *in-place*: it only replaces instructions at existing
    points, never inserts or removes points.  This is what makes the
    program-point mapping the identity and keeps the rules live-variable
    equivalent (LVE) candidates.
    """

    name: str = "rule"

    def find_applications(self, program: FormalProgram) -> List[RuleApplication]:
        """All bindings at which the rule may fire on ``program``."""
        raise NotImplementedError

    def apply(self, program: FormalProgram, application: RuleApplication) -> FormalProgram:
        """Return a new program with ``application``'s replacements performed."""
        instructions = list(program.instructions)
        for point, new_instruction in application.replacements.items():
            instructions[point - 1] = new_instruction
        return FormalProgram(instructions)

    def apply_first(self, program: FormalProgram) -> Optional[Tuple[FormalProgram, RuleApplication]]:
        """Apply the first available application, if any."""
        applications = self.find_applications(program)
        if not applications:
            return None
        application = applications[0]
        return self.apply(program, application), application

    def apply_exhaustively(
        self, program: FormalProgram, *, max_applications: int = 1000
    ) -> Tuple[FormalProgram, List[RuleApplication]]:
        """Apply the rule until it no longer fires (or the budget is reached).

        Applications are re-discovered after every rewrite because firing a
        rule can enable or disable further applications.
        """
        applied: List[RuleApplication] = []
        current = program
        for _ in range(max_applications):
            step = self.apply_first(current)
            if step is None:
                break
            current, application = step
            applied.append(application)
        return current, applied

    def __repr__(self) -> str:
        return f"<RewriteRule {self.name}>"
