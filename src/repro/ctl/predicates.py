"""The local predicates of Figure 3, as CTL atoms and derived formulas.

Each helper builds an :class:`~repro.ctl.formula.Atom` whose predicate
inspects the instruction at a program point.  Two families are provided:

* ``formal_*`` — for the linear language of :mod:`repro.formal` (used by
  the Figure 5 rewrite rules and by the CTL-vs-dataflow liveness tests);
* ``ir_*`` — the same predicates over block-IR functions.

``lives`` composes the atoms exactly as Figure 3 does::

    lives(x) ≜ ←AX ←A(true U def(x)) ∧ →E(¬def(x) U use(x))

i.e. *x is defined on every path reaching this point* and *some forward
path uses x before redefining it*.
"""

from __future__ import annotations


from ..formal.program import FAssign, FIn, FOut, FormalInstruction, FormalProgram
from ..ir.expr import Expr, free_vars, is_constant_expr
from ..ir.function import Function, ProgramPoint
from .formula import Atom, BackAU, BackAX, EU, Formula, Not, TRUE

__all__ = [
    "formal_defines",
    "formal_uses",
    "formal_stmt",
    "formal_point_is",
    "formal_trans",
    "formal_lives",
    "ir_defines",
    "ir_uses",
    "ir_lives",
    "conlit",
    "freevar",
]


# ---------------------------------------------------------------------- #
# Predicates over the formal (linear) language.
# ---------------------------------------------------------------------- #


def formal_defines(program: FormalProgram, var: str) -> Atom:
    """``def(x)``: the instruction at the point defines ``x``.

    Per Figure 3, both assignments to ``x`` and an ``in`` listing ``x``
    count as definitions.
    """

    def predicate(point: object) -> bool:
        inst = program[int(point)]  # type: ignore[arg-type]
        if isinstance(inst, FAssign):
            return inst.dest == var
        if isinstance(inst, FIn):
            return var in inst.variables
        return False

    return Atom(f"def({var})", predicate)


def formal_uses(program: FormalProgram, var: str) -> Atom:
    """``use(x)``: the instruction at the point reads ``x``.

    Assignments and conditional gotos use the variables of their
    expressions; ``out`` uses every output variable (Figure 3 lists
    ``out ...`` as a use).
    """

    def predicate(point: object) -> bool:
        inst = program[int(point)]  # type: ignore[arg-type]
        if isinstance(inst, FOut):
            return var in inst.variables
        return var in inst.used_variables()

    return Atom(f"use({var})", predicate)


def formal_stmt(program: FormalProgram, instruction: FormalInstruction) -> Atom:
    """``stmt(I)``: the instruction at the point equals ``I``."""

    def predicate(point: object) -> bool:
        return program[int(point)] == instruction  # type: ignore[arg-type]

    return Atom(f"stmt({instruction})", predicate)


def formal_point_is(target: int) -> Atom:
    """``point(m)``: the point is exactly ``m``."""

    return Atom(f"point({target})", lambda point: int(point) == target)  # type: ignore[arg-type]


def formal_trans(program: FormalProgram, expr: Expr) -> Atom:
    """``trans(e)``: the instruction at the point does not modify any
    constituent (free variable) of ``e``."""
    constituents = free_vars(expr)

    def predicate(point: object) -> bool:
        inst = program[int(point)]  # type: ignore[arg-type]
        defined = inst.defined_variable()
        if defined is not None and defined in constituents:
            return False
        if isinstance(inst, FIn) and any(v in constituents for v in inst.variables):
            return False
        return True

    return Atom(f"trans({expr})", predicate)


def formal_lives(program: FormalProgram, var: str) -> Formula:
    """``lives(x)`` exactly as composed in Figure 3."""
    defined = formal_defines(program, var)
    used = formal_uses(program, var)
    defined_on_all_backward_paths = BackAX(BackAU(TRUE, defined))
    used_before_redefined = EU(Not(defined), used)
    return defined_on_all_backward_paths & used_before_redefined


# ---------------------------------------------------------------------- #
# Predicates over block-IR functions.
# ---------------------------------------------------------------------- #


def ir_defines(function: Function, var: str) -> Atom:
    """``def(x)`` over IR program points (parameters count as defined at entry:0)."""

    def predicate(point: object) -> bool:
        assert isinstance(point, ProgramPoint)
        inst = function.instruction_at(point)
        if var in inst.defs():
            return True
        if (
            var in function.params
            and point.block == function.entry_label
            and point.index == 0
        ):
            return True
        return False

    return Atom(f"def({var})", predicate)


def ir_uses(function: Function, var: str) -> Atom:
    """``use(x)`` over IR program points."""

    def predicate(point: object) -> bool:
        assert isinstance(point, ProgramPoint)
        return var in function.instruction_at(point).uses()

    return Atom(f"use({var})", predicate)


def ir_lives(function: Function, var: str) -> Formula:
    """The Figure 3 liveness formula over IR points."""
    defined = ir_defines(function, var)
    used = ir_uses(function, var)
    return BackAX(BackAU(TRUE, defined)) & EU(Not(defined), used)


# ---------------------------------------------------------------------- #
# Global (non-temporal) predicates of Section 2.2.
# ---------------------------------------------------------------------- #


def conlit(expr: Expr) -> bool:
    """``conlit(c)``: the expression is a constant literal (no free variables)."""
    return is_constant_expr(expr)


def freevar(var: str, expr: Expr) -> bool:
    """``freevar(x, e)``: ``x`` occurs free in ``e``."""
    return var in free_vars(expr)
