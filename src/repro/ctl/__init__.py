"""CTL formulas, model checking and the Figure 3 predicates."""

from .formula import (
    AU,
    AX,
    And,
    Atom,
    BackAU,
    BackAX,
    BackEU,
    BackEX,
    EU,
    EX,
    FALSE,
    FalseFormula,
    Formula,
    Implies,
    Not,
    Or,
    TRUE,
    TrueFormula,
)
from .checker import (
    FormalProgramGraph,
    FunctionPointGraph,
    ModelChecker,
    PointGraph,
)
from .predicates import (
    conlit,
    formal_defines,
    formal_lives,
    formal_point_is,
    formal_stmt,
    formal_trans,
    formal_uses,
    freevar,
    ir_defines,
    ir_lives,
    ir_uses,
)

__all__ = [
    "Formula", "Atom", "TrueFormula", "FalseFormula", "TRUE", "FALSE",
    "Not", "And", "Or", "Implies",
    "AX", "EX", "AU", "EU", "BackAX", "BackEX", "BackAU", "BackEU",
    "PointGraph", "FormalProgramGraph", "FunctionPointGraph", "ModelChecker",
    "formal_defines", "formal_uses", "formal_stmt", "formal_point_is",
    "formal_trans", "formal_lives", "ir_defines", "ir_uses", "ir_lives",
    "conlit", "freevar",
]
