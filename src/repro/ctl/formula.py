"""First-order CTL formulas over program points (Section 2.2).

Formulas are built from atomic predicates (arbitrary point predicates
supplied by the caller), Boolean connectives and the temporal operators of
the paper:

* forward:  ``AX``, ``EX``, ``A(φ U ψ)``, ``E(φ U ψ)``
* backward: ``bAX``, ``bEX``, ``bA(φ U ψ)``, ``bE(φ U ψ)``
  (written ←AX, ←EX, ←A, ←E in the paper)

The *strong until* convention is used: ``φ U ψ`` requires ψ to eventually
hold; a maximal path that never satisfies ψ does not satisfy the until.
The model checker lives in :mod:`repro.ctl.checker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

__all__ = [
    "Formula",
    "Atom",
    "TrueFormula",
    "FalseFormula",
    "Not",
    "And",
    "Or",
    "Implies",
    "AX",
    "EX",
    "AU",
    "EU",
    "BackAX",
    "BackEX",
    "BackAU",
    "BackEU",
    "TRUE",
    "FALSE",
]

P = TypeVar("P", bound=Hashable)


class Formula:
    """Base class for CTL formulas.

    Overloads ``&``, ``|``, ``~`` and ``>>`` (implication) so side
    conditions read close to the paper's notation::

        cond = BackAX(BackAU(TRUE, defines("x"))) & EX(uses("x"))
    """

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic predicate over program points.

    ``name`` is only used for display; ``predicate`` maps a program point
    to a bool.  The point type is whatever the underlying graph uses
    (ints for formal programs, :class:`~repro.ir.function.ProgramPoint`
    for IR functions).
    """

    name: str
    predicate: Callable[[object], bool]

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash((self.name, id(self.predicate)))


@dataclass(frozen=True)
class TrueFormula(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"({self.lhs} ∧ {self.rhs})"


@dataclass(frozen=True)
class Or(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"({self.lhs} ∨ {self.rhs})"


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"({self.lhs} ⇒ {self.rhs})"


@dataclass(frozen=True)
class AX(Formula):
    """Forward: the operand holds at *all* immediate successors."""

    operand: Formula

    def __str__(self) -> str:
        return f"AX({self.operand})"


@dataclass(frozen=True)
class EX(Formula):
    """Forward: the operand holds at *some* immediate successor."""

    operand: Formula

    def __str__(self) -> str:
        return f"EX({self.operand})"


@dataclass(frozen=True)
class AU(Formula):
    """Forward: on all paths, ``lhs`` holds until ``rhs`` holds (strong until)."""

    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"A({self.lhs} U {self.rhs})"


@dataclass(frozen=True)
class EU(Formula):
    """Forward: on some path, ``lhs`` holds until ``rhs`` holds (strong until)."""

    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"E({self.lhs} U {self.rhs})"


@dataclass(frozen=True)
class BackAX(Formula):
    """Backward ←AX: the operand holds at all immediate predecessors."""

    operand: Formula

    def __str__(self) -> str:
        return f"←AX({self.operand})"


@dataclass(frozen=True)
class BackEX(Formula):
    """Backward ←EX: the operand holds at some immediate predecessor."""

    operand: Formula

    def __str__(self) -> str:
        return f"←EX({self.operand})"


@dataclass(frozen=True)
class BackAU(Formula):
    """Backward ←A(φ U ψ): on all backward paths, φ until ψ."""

    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"←A({self.lhs} U {self.rhs})"


@dataclass(frozen=True)
class BackEU(Formula):
    """Backward ←E(φ U ψ): on some backward path, φ until ψ."""

    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"←E({self.lhs} U {self.rhs})"
