"""A CTL model checker over program-point graphs.

The checker computes, for a formula φ, the set of program points at which
φ holds (``sat(φ)``), using the classic fixed-point characterizations:

* ``sat(EX φ)``   = points with a successor in ``sat(φ)``
* ``sat(AX φ)``   = points all of whose successors are in ``sat(φ)``
* ``sat(E φ U ψ)`` = least fixpoint of ``Z = sat(ψ) ∪ (sat(φ) ∩ EX Z)``
* ``sat(A φ U ψ)`` = least fixpoint of ``Z = sat(ψ) ∪ (sat(φ) ∩ AX Z ∩ EX true)``

The ``EX true`` conjunct in AU implements *strong* until on finite maximal
paths: a terminal point (no successors) satisfies ``A(φ U ψ)`` only via ψ.
Backward operators use predecessors instead of successors.

The graph is abstracted behind :class:`PointGraph`, with adapters for the
formal linear language and for IR functions, so the same checker serves
Figure 3's predicates, Figure 5's rewrite-rule side conditions and the
IR-level tests.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    List,
    Set,
    Tuple,
    TypeVar,
)

from ..formal.program import FormalProgram
from ..ir.function import Function, ProgramPoint
from ..cfg.graph import ControlFlowGraph
from .formula import (
    AU,
    AX,
    And,
    Atom,
    BackAU,
    BackAX,
    BackEU,
    BackEX,
    EU,
    EX,
    FalseFormula,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
)

__all__ = ["PointGraph", "FormalProgramGraph", "FunctionPointGraph", "ModelChecker"]

PointT = TypeVar("PointT", bound=Hashable)


class PointGraph(Generic[PointT]):
    """Abstract interface the model checker needs from a program."""

    def points(self) -> List[PointT]:
        raise NotImplementedError

    def successors(self, point: PointT) -> Tuple[PointT, ...]:
        raise NotImplementedError

    def predecessors(self, point: PointT) -> Tuple[PointT, ...]:
        raise NotImplementedError


class FormalProgramGraph(PointGraph[int]):
    """Point graph of a formal (linear) program; points are 1-based ints."""

    def __init__(self, program: FormalProgram) -> None:
        self.program = program
        self._points = list(program.points())
        self._succ: Dict[int, Tuple[int, ...]] = {}
        self._pred: Dict[int, List[int]] = {p: [] for p in self._points}
        n = len(program)
        for point in self._points:
            succs = tuple(s for s in program.successors(point) if 1 <= s <= n)
            self._succ[point] = succs
            for succ in succs:
                self._pred[succ].append(point)

    def points(self) -> List[int]:
        return list(self._points)

    def successors(self, point: int) -> Tuple[int, ...]:
        return self._succ.get(point, ())

    def predecessors(self, point: int) -> Tuple[int, ...]:
        return tuple(self._pred.get(point, ()))


class FunctionPointGraph(PointGraph[ProgramPoint]):
    """Point graph of a block-IR function; points are ``(block, index)`` pairs."""

    def __init__(self, function: Function, cfg: ControlFlowGraph = None) -> None:
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self._points = function.program_points()
        self._succ: Dict[ProgramPoint, Tuple[ProgramPoint, ...]] = {}
        self._pred: Dict[ProgramPoint, List[ProgramPoint]] = {p: [] for p in self._points}
        point_set = set(self._points)
        for point in self._points:
            succs = tuple(
                s for s in self.cfg.point_successors(point) if s in point_set
            )
            self._succ[point] = succs
            for succ in succs:
                self._pred[succ].append(point)

    def points(self) -> List[ProgramPoint]:
        return list(self._points)

    def successors(self, point: ProgramPoint) -> Tuple[ProgramPoint, ...]:
        return self._succ.get(point, ())

    def predecessors(self, point: ProgramPoint) -> Tuple[ProgramPoint, ...]:
        return tuple(self._pred.get(point, ()))


class ModelChecker(Generic[PointT]):
    """Evaluates CTL formulas over a :class:`PointGraph`."""

    def __init__(self, graph: PointGraph[PointT]) -> None:
        self.graph = graph
        self._all_points = frozenset(graph.points())

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def sat(self, formula: Formula) -> FrozenSet[PointT]:
        """The set of program points at which ``formula`` holds."""
        return self._sat(formula)

    def holds_at(self, point: PointT, formula: Formula) -> bool:
        """Does ``formula`` hold at ``point``?  (``p, l ⊨ φ`` in the paper.)"""
        return point in self._sat(formula)

    # ------------------------------------------------------------------ #
    # Recursive satisfaction-set computation.
    # ------------------------------------------------------------------ #
    def _sat(self, formula: Formula) -> FrozenSet[PointT]:
        if isinstance(formula, TrueFormula):
            return self._all_points
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, Atom):
            return frozenset(p for p in self._all_points if formula.predicate(p))
        if isinstance(formula, Not):
            return self._all_points - self._sat(formula.operand)
        if isinstance(formula, And):
            return self._sat(formula.lhs) & self._sat(formula.rhs)
        if isinstance(formula, Or):
            return self._sat(formula.lhs) | self._sat(formula.rhs)
        if isinstance(formula, Implies):
            return (self._all_points - self._sat(formula.lhs)) | self._sat(formula.rhs)
        if isinstance(formula, EX):
            return self._exists_next(self._sat(formula.operand), self.graph.successors)
        if isinstance(formula, AX):
            return self._all_next(self._sat(formula.operand), self.graph.successors)
        if isinstance(formula, BackEX):
            return self._exists_next(self._sat(formula.operand), self.graph.predecessors)
        if isinstance(formula, BackAX):
            return self._all_next(self._sat(formula.operand), self.graph.predecessors)
        if isinstance(formula, EU):
            return self._exists_until(
                self._sat(formula.lhs), self._sat(formula.rhs), self.graph.successors
            )
        if isinstance(formula, AU):
            return self._all_until(
                self._sat(formula.lhs), self._sat(formula.rhs), self.graph.successors
            )
        if isinstance(formula, BackEU):
            return self._exists_until(
                self._sat(formula.lhs), self._sat(formula.rhs), self.graph.predecessors
            )
        if isinstance(formula, BackAU):
            return self._all_until(
                self._sat(formula.lhs), self._sat(formula.rhs), self.graph.predecessors
            )
        raise TypeError(f"unknown formula {formula!r}")

    # ------------------------------------------------------------------ #
    # Operator implementations.
    # ------------------------------------------------------------------ #
    def _exists_next(
        self,
        target: FrozenSet[PointT],
        next_of: Callable[[PointT], Tuple[PointT, ...]],
    ) -> FrozenSet[PointT]:
        return frozenset(
            p for p in self._all_points if any(s in target for s in next_of(p))
        )

    def _all_next(
        self,
        target: FrozenSet[PointT],
        next_of: Callable[[PointT], Tuple[PointT, ...]],
    ) -> FrozenSet[PointT]:
        # Vacuously true at points with no next states (standard AX semantics).
        return frozenset(
            p for p in self._all_points if all(s in target for s in next_of(p))
        )

    def _exists_until(
        self,
        lhs: FrozenSet[PointT],
        rhs: FrozenSet[PointT],
        next_of: Callable[[PointT], Tuple[PointT, ...]],
    ) -> FrozenSet[PointT]:
        result: Set[PointT] = set(rhs)
        changed = True
        while changed:
            changed = False
            for p in self._all_points:
                if p in result or p not in lhs:
                    continue
                if any(s in result for s in next_of(p)):
                    result.add(p)
                    changed = True
        return frozenset(result)

    def _all_until(
        self,
        lhs: FrozenSet[PointT],
        rhs: FrozenSet[PointT],
        next_of: Callable[[PointT], Tuple[PointT, ...]],
    ) -> FrozenSet[PointT]:
        result: Set[PointT] = set(rhs)
        changed = True
        while changed:
            changed = False
            for p in self._all_points:
                if p in result or p not in lhs:
                    continue
                nexts = next_of(p)
                # Strong until: require at least one next state, all in result.
                if nexts and all(s in result for s in nexts):
                    result.add(p)
                    changed = True
        return frozenset(result)
