"""Structured runtime events: a typed hierarchy, a bus, and a bounded log.

The adaptive runtime used to narrate its life as an unbounded list of
``(function, kind, point)`` tuples.  This module replaces that with

* a :class:`RuntimeEvent` dataclass hierarchy — one class per tier
  transition, each carrying the structured facts a client actually
  wants (the guard reason, the continuation hit count, the number of
  reconstructed frames, ...);

* an :class:`EventBus` with subscriber registration — embedders observe
  transitions as they happen instead of polling a log; and

* a :class:`RingBufferRecorder` — a *bounded* event log (default
  capacity 4096) so long-running workloads no longer grow memory
  without bound.  Evictions are counted, never silent.

The bus is deliberately cheap when idle: steady-state warm calls emit
no events at all, and publishing is one recorder append plus one call
per subscriber.

Both the bus and the recorder are **thread-safe**: the concurrent
runtime publishes tier transitions from request threads and from
background compile workers alike.  Registration order is preserved,
subscriptions are identified by token (subscribing the same callable
twice yields two independent registrations, each with its own
unsubscriber), publish delivers to a snapshot of the subscriber list
(so a subscriber unsubscribing — itself or another — mid-publish can
never make a different subscriber miss the event), and subscriber
callbacks run *outside* the bus lock so a callback may freely
subscribe, unsubscribe, or publish without deadlocking.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, fields
from enum import Enum
from typing import (
    Callable,
    ClassVar,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

from ..ir.function import ProgramPoint

__all__ = [
    "Tier",
    "EVENT_TYPES",
    "event_as_dict",
    "event_from_dict",
    "RuntimeEvent",
    "TierUp",
    "VersionRestored",
    "VersionAdded",
    "VersionRetired",
    "EntryDispatched",
    "SpeculationRejected",
    "OptimizingOSR",
    "OSREntryRejected",
    "GuardFailed",
    "DeoptimizingOSR",
    "DispatchedOSR",
    "ContinuationHit",
    "ContinuationCached",
    "ContinuationEvicted",
    "MultiFrameDeopt",
    "SoundnessViolation",
    "Invalidated",
    "REREGISTERED",
    "EventBus",
    "RingBufferRecorder",
    "Subscriber",
]


class Tier(str, Enum):
    """The execution tier a function currently runs in.

    Values are the historical strings (``"base"`` / ``"optimized"``), and
    the enum derives from :class:`str`, so existing comparisons like
    ``handle.tier == "optimized"`` keep passing while new code gets a
    real type to switch on.
    """

    BASE = "base"
    OPTIMIZED = "optimized"

    def __str__(self) -> str:  # "base", not "Tier.BASE", in rendered events
        return self.value


@dataclass(frozen=True)
class RuntimeEvent:
    """Base class of every tier-transition event.

    ``function`` is the registered function the transition concerns and
    ``point`` the program point it happened at (``None`` for whole-
    function transitions such as a tier-up).  ``kind`` is a stable
    machine-readable tag, also used by :meth:`as_tuple` to render the
    legacy ``(function, kind, point)`` shape.
    """

    function: str
    point: Optional[ProgramPoint] = None

    kind: ClassVar[str] = "event"

    def as_tuple(self) -> Tuple[str, str, Optional[ProgramPoint]]:
        """The legacy tuple rendering kept for the compatibility shim."""
        return (self.function, self.kind, self.point)


@dataclass(frozen=True)
class TierUp(RuntimeEvent):
    """A function crossed the compile threshold and installed a version."""

    speculative: bool = False
    guards: int = 0
    inlined_frames: int = 0
    #: The tier the function landed in (always optimized for a tier-up).
    tier: Tier = Tier.OPTIMIZED
    #: The entry-profile cluster the version is keyed by (rendered
    #: :class:`~repro.vm.profile.VersionKey`; ``"generic"`` matches all).
    key: str = "generic"
    #: Live versions in the function's multiverse after the install.
    versions: int = 1
    #: Wall-clock seconds the build spent (optimization pipeline plus
    #: deopt-plan construction), measured on the compiling thread.
    #: ``0.0`` when the producer did not time the build (events built by
    #: hand in tests, pre-metrics recordings).
    compile_seconds: float = 0.0

    kind: ClassVar[str] = "tier-up"


@dataclass(frozen=True)
class VersionRestored(RuntimeEvent):
    """A persisted compiled version was re-installed from an artifact store.

    Deliberately *not* a :class:`TierUp`: a warm start serves its first
    call from the compiled tier without ever re-warming, and clients
    (and tests) that count tier-ups as "compilation work done in this
    process" must see zero.  Carries the same payload so stats fold it
    identically.
    """

    speculative: bool = False
    guards: int = 0
    inlined_frames: int = 0
    tier: Tier = Tier.OPTIMIZED
    key: str = "generic"
    versions: int = 1

    kind: ClassVar[str] = "version-restored"


@dataclass(frozen=True)
class VersionAdded(RuntimeEvent):
    """The multiverse grew: a version joined a function's version table.

    Published alongside the :class:`TierUp` (or :class:`VersionRestored`)
    whenever the installed version is *specialized* (non-generic key) or
    joins a table that already holds another live version.  The very
    first generic install of a single-version function publishes only
    the plain :class:`TierUp`, so pre-multiverse event streams are
    unchanged.
    """

    key: str = "generic"
    #: Live versions in the table after the add.
    versions: int = 1

    kind: ClassVar[str] = "version-added"


@dataclass(frozen=True)
class VersionRetired(RuntimeEvent):
    """A cold version was evicted to keep the multiverse within bound.

    Carries the same gauge payload as :class:`Invalidated` (the facts of
    the surviving newest version) so the stats fold stays an exact
    mirror of the runtime's own counters.
    """

    key: str = "generic"
    #: Live versions in the table after the eviction.
    versions: int = 0
    speculative: bool = False
    guards: int = 0
    inlined_frames: int = 0
    #: Cached continuations surviving the eviction (the retired
    #: version's continuations die with it).
    continuations: int = 0

    kind: ClassVar[str] = "version-retired"


@dataclass(frozen=True)
class EntryDispatched(RuntimeEvent):
    """A call (or OSR entry) was dispatched to a best-matching version.

    Only multiverse dispatches publish this — the selected version is
    specialized, or the table held more than one candidate.  A function
    living its whole life as a single generic version emits none, which
    keeps warm steady-state calls event-free exactly as before.
    """

    key: str = "generic"
    #: Live versions the dispatch chose among.
    versions: int = 1

    kind: ClassVar[str] = "entry-dispatched"


@dataclass(frozen=True)
class SpeculationRejected(RuntimeEvent):
    """A speculative build was discarded: some guard had no deopt plan."""

    kind: ClassVar[str] = "speculation-rejected"


@dataclass(frozen=True)
class OptimizingOSR(RuntimeEvent):
    """An in-flight base-tier activation transferred into optimized code."""

    kind: ClassVar[str] = "optimizing-osr"


@dataclass(frozen=True)
class OSREntryRejected(RuntimeEvent):
    """A mid-flight entry was refused (a dominating guard would not hold)."""

    kind: ClassVar[str] = "osr-entry-rejected"


@dataclass(frozen=True)
class GuardFailed(RuntimeEvent):
    """A speculation guard fired in optimized code."""

    reason: Optional[str] = None
    multiframe: bool = False

    kind: ClassVar[str] = "guard-failed"


@dataclass(frozen=True)
class DeoptimizingOSR(RuntimeEvent):
    """Execution transferred back to f_base through a deopt mapping.

    ``from_guard`` distinguishes a guard-failure deopt (the dispatched-
    continuation miss path) from an external :meth:`deoptimize_at`
    invalidation.
    """

    from_guard: bool = True

    kind: ClassVar[str] = "deoptimizing-osr"


@dataclass(frozen=True)
class DispatchedOSR(RuntimeEvent):
    """A repeated guard failure jumped straight to a cached continuation."""

    hits: int = 0

    kind: ClassVar[str] = "dispatched-osr"


#: A dispatched OSR *is* a continuation-cache hit; both names are public.
ContinuationHit = DispatchedOSR


@dataclass(frozen=True)
class ContinuationCached(RuntimeEvent):
    """A specialized deopt continuation was built and cached."""

    kind: ClassVar[str] = "continuation-cached"


@dataclass(frozen=True)
class ContinuationEvicted(RuntimeEvent):
    """The bounded continuation cache evicted its oldest entry."""

    kind: ClassVar[str] = "continuation-evicted"


@dataclass(frozen=True)
class MultiFrameDeopt(RuntimeEvent):
    """A guard inside inlined code materialized a virtual call stack."""

    frames: int = 0

    kind: ClassVar[str] = "multiframe-deopt"


@dataclass(frozen=True)
class SoundnessViolation(RuntimeEvent):
    """The static soundness verifier failed an obligation in warn mode.

    Published once per violated obligation when ``verify_deopt="warn"``
    lets an unproven version through — ``obligation`` is the dotted
    ``pack/rule`` name (e.g. ``"completeness/definite-assignment"``)
    and ``detail`` the human-readable finding.  Strict mode raises
    :class:`~repro.analysis.soundness.UnsoundVersionError` instead and
    publishes nothing (the version never exists).
    """

    obligation: str = ""
    detail: str = ""
    #: The entry-profile key of the version that failed verification.
    key: str = "generic"

    kind: ClassVar[str] = "soundness-violation"


#: ``Invalidated.reason`` used when a name is re-registered with a new
#: function body: the old version, its continuations, its profile and
#: its statistics are all discarded, not just the installed code.
REREGISTERED = "re-registered"


@dataclass(frozen=True)
class Invalidated(RuntimeEvent):
    """Repeated failures refuted a speculation; the version was discarded.

    Also published (with ``reason=REREGISTERED``) when a registered name
    is explicitly replaced by a new function body — subscribers holding
    anything derived from the old version must drop it.
    """

    reason: Optional[str] = None
    #: The tier the function falls back to — base when the discarded
    #: version was the last one, optimized when other versions survive.
    tier: Tier = Tier.BASE
    #: The key of the discarded version.
    key: str = "generic"
    #: Live versions surviving the discard (0 == the historical
    #: single-version invalidation, which drops to the base tier).
    versions: int = 0
    #: Gauge payload of the surviving newest version (all zero when
    #: nothing survives), mirrored into the stats fold.
    speculative: bool = False
    guards: int = 0
    inlined_frames: int = 0
    #: Cached continuations surviving the discard.
    continuations: int = 0

    kind: ClassVar[str] = "invalidated"


#: Every concrete event class, keyed by its stable ``kind`` tag.  The
#: JSON codec below (and anything replaying a serialized stream — the
#: fleet's JSON-lines sinks, ``repro top --follow``) resolves classes
#: through this table, so adding an event type is one entry here.
EVENT_TYPES: Dict[str, Type[RuntimeEvent]] = {
    cls.kind: cls
    for cls in (
        TierUp,
        VersionRestored,
        VersionAdded,
        VersionRetired,
        EntryDispatched,
        SpeculationRejected,
        OptimizingOSR,
        OSREntryRejected,
        GuardFailed,
        DeoptimizingOSR,
        DispatchedOSR,
        ContinuationCached,
        ContinuationEvicted,
        MultiFrameDeopt,
        SoundnessViolation,
        Invalidated,
    )
}


def event_as_dict(event: RuntimeEvent) -> Dict[str, object]:
    """A JSON-safe rendering of ``event`` (inverse of :func:`event_from_dict`).

    ``kind`` identifies the concrete class; program points render as
    their canonical ``"block:index"`` text and tiers as their string
    value, so the result round-trips through ``json.dumps`` losslessly.
    """
    data: Dict[str, object] = {"kind": event.kind}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if isinstance(value, Tier):  # before the str check: Tier is a str
            value = value.value
        elif isinstance(value, ProgramPoint):
            value = str(value)
        data[spec.name] = value
    return data


def event_from_dict(data: Dict[str, object]) -> RuntimeEvent:
    """Rebuild the typed event a :func:`event_as_dict` rendering describes.

    Unknown kinds and unknown fields raise :class:`ValueError` loudly —
    a stream written by a newer engine must not half-decode.
    """
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_TYPES)}"
        )
    known = {spec.name for spec in fields(cls)}
    unknown = sorted(set(data) - known - {"kind"})
    if unknown:
        raise ValueError(f"unknown field(s) {unknown} for event kind {kind!r}")
    kwargs: Dict[str, object] = {}
    for spec in fields(cls):
        if spec.name not in data:
            continue
        value = data[spec.name]
        if spec.name == "point" and isinstance(value, str):
            value = ProgramPoint.parse(value)
        elif spec.name == "tier" and isinstance(value, str):
            value = Tier(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


Subscriber = Callable[[RuntimeEvent], None]


class RingBufferRecorder:
    """A bounded, iteration-ordered, thread-safe event log.

    Holds the most recent ``capacity`` events; older ones are evicted
    (and counted in :attr:`dropped`) rather than growing without bound.
    A lock makes ``record`` atomic with the total counter, so events
    published concurrently from request threads and compile workers are
    never lost or double-counted; iteration works over a snapshot.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[RuntimeEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Total events ever recorded (including evicted ones).
        self.total = 0

    @property
    def dropped(self) -> int:
        """How many events have been evicted to stay within capacity."""
        with self._lock:
            return self.total - len(self._events)

    def record(self, event: RuntimeEvent) -> None:
        with self._lock:
            self.total += 1
            self._events.append(event)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        return iter(self.events())

    def events(self) -> List[RuntimeEvent]:
        """A snapshot of the retained events, oldest first."""
        with self._lock:
            return list(self._events)


class EventBus:
    """Publish/subscribe hub for :class:`RuntimeEvent` streams.

    Every published event is first appended to the (optional, bounded)
    recorder, then handed to each subscriber in registration order.
    Subscribers are plain callables; :meth:`subscribe` returns an
    unsubscribe closure so scoped observation needs no bookkeeping.

    Each subscription is identified by a private token, not by the
    callable's equality: subscribing the same callable twice yields two
    registrations whose unsubscribers each remove exactly their own
    (historically, equality-based removal made the first token cancel
    the *other* registration).  Unsubscribing is idempotent.  Publish
    snapshots the subscriber list under the lock and invokes callbacks
    outside it, so a callback that unsubscribes mid-publish never makes
    another subscriber skip the event, and callbacks may re-enter the
    bus freely.
    """

    def __init__(self, recorder: Optional[RingBufferRecorder] = None) -> None:
        self.recorder = recorder
        self._lock = threading.Lock()
        #: Insertion-ordered token → subscriber map (dict preserves
        #: registration order for delivery).
        self._subscribers: Dict[int, Subscriber] = {}
        self._next_token = 0

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = subscriber

        def unsubscribe() -> None:
            with self._lock:
                self._subscribers.pop(token, None)

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, event: RuntimeEvent) -> None:
        if self.recorder is not None:
            self.recorder.record(event)
        with self._lock:
            subscribers = tuple(self._subscribers.values())
        for subscriber in subscribers:
            subscriber(event)

    def events(self) -> List[RuntimeEvent]:
        """The recorder's retained events (empty without a recorder)."""
        return self.recorder.events() if self.recorder is not None else []
