"""Pluggable tiering policies: *when* to act, separated from *how*.

The adaptive runtime is a mechanism — it knows how to compile, how to
enter optimized code mid-flight, how to unwind a failing guard, how to
cache a continuation.  A :class:`TieringPolicy` decides *whether* each
of those is worth doing (the knobs Deoptless identifies as exactly what
a client wants to vary):

* :meth:`~TieringPolicy.should_compile` — tier a function up now?
* :meth:`~TieringPolicy.select_osr_point` — where (if anywhere) should
  the triggering call hop into the fresh version mid-execution?
* :meth:`~TieringPolicy.should_cache_continuation` — build a
  Deoptless-style dispatched continuation for this guard's deopt?
* :meth:`~TieringPolicy.should_invalidate` — do repeated failures
  refute the speculation, forcing a recompile without it?

Policies are stateless strategies over the runtime's per-function
:class:`~repro.vm.runtime.TieredFunction` state and the engine's
:class:`~repro.engine.config.EngineConfig`; correctness constraints
(deopt-plan coverage, version identity, seeded-plan exclusions) stay in
the mechanism and cannot be overridden from here.

Concurrency contract: the runtime may consult a policy from any request
thread, and :meth:`~TieringPolicy.should_compile` is evaluated *inside*
the function's state lock so the compile claim is race-free — policy
methods must therefore be quick, must not call back into the runtime or
engine, and, if they keep their own state (e.g. a counting test
policy), must protect it themselves.

:class:`HotnessPolicy` is the production default.  :class:`AlwaysCompile`
and :class:`NeverCompile` pin the compile decision for tests that need a
deterministic tier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, Sequence, runtime_checkable

from ..ir.function import ProgramPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.frames import DeoptPlan
    from ..vm.profile import VersionKey
    from ..vm.runtime import TieredFunction
    from .config import EngineConfig

__all__ = [
    "TieringPolicy",
    "HotnessPolicy",
    "AlwaysCompile",
    "NeverCompile",
]


@runtime_checkable
class TieringPolicy(Protocol):
    """Strategy protocol consulted by the runtime at every tier decision."""

    def should_compile(
        self, state: "TieredFunction", config: "EngineConfig"
    ) -> bool:
        """Build an optimized version for ``state`` now?"""
        ...

    def select_osr_point(
        self,
        state: "TieredFunction",
        candidates: Sequence[ProgramPoint],
        loop_points: Sequence[ProgramPoint],
        config: "EngineConfig",
    ) -> Optional[ProgramPoint]:
        """Pick the f_base point the triggering call OSR-enters from.

        ``candidates`` are every mapped, pause-capable point of f_base
        (in program order); ``loop_points`` is the subset inside natural
        loops.  Return ``None`` to skip the optimizing OSR and let the
        triggering call finish in the base tier.
        """
        ...

    def should_cache_continuation(
        self,
        state: "TieredFunction",
        point: ProgramPoint,
        plan: "DeoptPlan",
        config: "EngineConfig",
    ) -> bool:
        """Cache a dispatched continuation for the guard at ``point``?"""
        ...

    def should_invalidate(
        self,
        state: "TieredFunction",
        point: ProgramPoint,
        failures: int,
        config: "EngineConfig",
    ) -> bool:
        """Refute the speculation after ``failures`` failures at ``point``?"""
        ...

    def should_add_version(
        self,
        state: "TieredFunction",
        key: "VersionKey",
        config: "EngineConfig",
    ) -> bool:
        """Grow ``state``'s multiverse with a version specialized to ``key``?

        Consulted (inside the state lock, like
        :meth:`should_compile`) before the runtime claims a compile for
        a hot entry-profile cluster while other versions are live.
        Return ``False`` to veto multiverse growth; the call keeps being
        served by the base tier or the best generic match.  The
        mechanism has already checked the hard bounds (``key`` is hot,
        clustering is stable, ``config.max_versions`` permits a table).
        """
        ...


class HotnessPolicy:
    """The default policy: counters against the config's thresholds.

    Compiles at ``hotness_threshold`` calls, prefers an OSR entry inside
    a loop (a long-running iteration is where an optimizing OSR pays),
    always caches continuations, and refutes a speculation after
    ``invalidate_after`` failures at one guard.
    """

    def should_compile(
        self, state: "TieredFunction", config: "EngineConfig"
    ) -> bool:
        return state.call_count >= config.hotness_threshold

    def select_osr_point(
        self,
        state: "TieredFunction",
        candidates: Sequence[ProgramPoint],
        loop_points: Sequence[ProgramPoint],
        config: "EngineConfig",
    ) -> Optional[ProgramPoint]:
        if loop_points:
            return loop_points[0]
        return candidates[0] if candidates else None

    def should_cache_continuation(
        self,
        state: "TieredFunction",
        point: ProgramPoint,
        plan: "DeoptPlan",
        config: "EngineConfig",
    ) -> bool:
        return True

    def should_invalidate(
        self,
        state: "TieredFunction",
        point: ProgramPoint,
        failures: int,
        config: "EngineConfig",
    ) -> bool:
        return failures >= config.invalidate_after

    def should_add_version(
        self,
        state: "TieredFunction",
        key: "VersionKey",
        config: "EngineConfig",
    ) -> bool:
        return True


class AlwaysCompile(HotnessPolicy):
    """Compile on the very first call — deterministic optimized tier."""

    def should_compile(
        self, state: "TieredFunction", config: "EngineConfig"
    ) -> bool:
        return True


class NeverCompile(HotnessPolicy):
    """Never tier up: everything runs (and profiles) in the base tier."""

    def should_compile(
        self, state: "TieredFunction", config: "EngineConfig"
    ) -> bool:
        return False
