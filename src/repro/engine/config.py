"""Typed, validated, frozen configuration for the adaptive engine.

Every tuning knob that used to live in ``AdaptiveRuntime.__init__``'s
kwargs pile is a field of :class:`EngineConfig`: hotness and profile
thresholds, backends per tier, speculation and inlining toggles with
their budgets, the backend-independent recursion fuel, and the sizes of
the two bounded caches (the event ring buffer and the per-function
continuation cache).  The dataclass is frozen — a config is a value,
safely shared between engines — and validates itself on construction,
so a nonsensical knob fails loudly at the embedding site instead of
deep inside a tier transition.

:meth:`EngineConfig.from_env` subsumes the ``REPRO_BACKEND`` switch: it
resolves the optimized-tier backend from the environment *eagerly*, so
an invalid value raises a clear :class:`ValueError` (listing the
registered backend names) at startup rather than falling through to
first use.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..core.reconstruct import ReconstructionMode

__all__ = [
    "EngineConfig",
    "LEGACY_KWARG_FIELDS",
    "FINGERPRINT_FIELDS",
    "verify_deopt_from_env",
]

#: Accepted values for :attr:`EngineConfig.verify_deopt` (besides ``None``).
VERIFY_DEOPT_MODES: Tuple[str, ...] = ("off", "warn", "strict")


def verify_deopt_from_env() -> str:
    """Resolve the soundness-verifier mode from ``REPRO_VERIFY_DEOPT``.

    Empty or unset means ``"off"``; anything else must name a mode.
    Validated eagerly for the same reason as ``REPRO_BACKEND``: a typo'd
    CI lane should fail at engine construction, not silently verify
    nothing.
    """
    value = os.environ.get("REPRO_VERIFY_DEOPT", "").strip().lower()
    if not value:
        return "off"
    if value not in VERIFY_DEOPT_MODES:
        raise ValueError(
            f"REPRO_VERIFY_DEOPT={value!r} names no verifier mode; "
            f"choose from {sorted(VERIFY_DEOPT_MODES)}"
        )
    return value


#: Fields that determine *what optimized code the engine produces* — the
#: semantic identity a persisted artifact is keyed by.  Runtime-only knobs
#: (worker counts, buffer and cache sizes, execution fuel, backend
#: selection) change how fast or where code runs, never what is compiled,
#: so two engines differing only in those can safely share artifacts.
FINGERPRINT_FIELDS: Tuple[str, ...] = (
    "hotness_threshold",
    "invalidate_after",
    "speculate",
    "min_samples",
    "min_ratio",
    "inline",
    "inline_min_calls",
    "max_callee_size",
    "max_inline_depth",
    "mode",
    "passes",
)


#: ``AdaptiveRuntime.__init__`` legacy kwargs and the EngineConfig field
#: each maps to (the names were kept aligned on purpose, so the mapping
#: is the identity — the table exists so the shim can reject unknown
#: kwargs with a helpful message and docs can render the migration).
LEGACY_KWARG_FIELDS: Dict[str, str] = {
    "hotness_threshold": "hotness_threshold",
    "passes": "passes",
    "step_limit": "step_limit",
    "mode": "mode",
    "speculate": "speculate",
    "min_samples": "min_samples",
    "min_ratio": "min_ratio",
    "inline": "inline",
    "inline_min_calls": "inline_min_calls",
    "max_callee_size": "max_callee_size",
    "max_inline_depth": "max_inline_depth",
    "max_call_depth": "max_call_depth",
    "invalidate_after": "invalidate_after",
    "opt_backend": "opt_backend",
    "base_backend": "base_backend",
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class EngineConfig:
    """Every knob of the adaptive engine, as one validated value.

    Backends are given by registry name (see
    :data:`repro.vm.backend.BACKEND_NAMES`) or as an
    :class:`~repro.vm.backend.ExecutionBackend` instance for tests that
    inject a custom engine; ``opt_backend=None`` defers to the
    ``REPRO_BACKEND`` environment variable at engine construction.
    """

    # --- tiering -------------------------------------------------------- #
    #: Calls before a function is compiled (consulted by HotnessPolicy).
    hotness_threshold: int = 3
    #: Repeated failures at one guard before its assumption is refuted.
    invalidate_after: int = 2
    #: Live specialized versions a function may keep (the version
    #: multiverse bound).  ``1`` pins the historical single-version
    #: behaviour: one generic version, no profile-keyed entry dispatch.
    max_versions: int = 4

    # --- speculation ---------------------------------------------------- #
    speculate: bool = True
    #: Minimum profile samples before a fact is speculated on.
    min_samples: int = 4
    #: Minimum dominance ratio for an assume-constant/branch fact.
    min_ratio: float = 0.999

    # --- interprocedural inlining --------------------------------------- #
    inline: bool = True
    #: Calls a site needs in the caller's profile to be splice-inlined.
    inline_min_calls: int = 3
    #: Largest callee body (instructions) the inliner will splice.
    max_callee_size: int = 80
    #: Nested-inlining depth budget.
    max_inline_depth: int = 2

    # --- execution ------------------------------------------------------ #
    #: Backend-independent recursion fuel (activations per module call).
    max_call_depth: int = 96
    #: Per-activation step/block-transfer budget.
    step_limit: int = 2_000_000
    #: State-reconstruction mode for OSR mappings and deopt plans.
    mode: ReconstructionMode = ReconstructionMode.AVAIL
    #: Engine for optimized versions and continuations (name, instance,
    #: or None → the REPRO_BACKEND environment variable).
    opt_backend: Union[str, Any, None] = None
    #: Engine for the profiled base tier; must support profiling.
    base_backend: Union[str, Any] = "interp"
    #: Explicit pass pipeline (disables speculation when set).
    passes: Optional[Tuple[Any, ...]] = None

    # --- background compilation ----------------------------------------- #
    #: Worker threads for off-thread optimization.  ``0`` (the default)
    #: compiles synchronously on the triggering call — today's
    #: deterministic behavior, which tests rely on.  With ``>= 1`` a hot
    #: function's compile job is submitted to a bounded worker pool and
    #: the request path keeps executing the base tier until the finished
    #: version is atomically published into the tier table.
    compile_workers: int = 0

    # --- bounded observability ------------------------------------------ #
    #: Capacity of the event ring buffer (the bounded transition log).
    event_buffer_size: int = 4096
    #: Per-function cap on cached dispatched-OSR continuations.
    continuation_cache_size: int = 32

    # --- static soundness verification ----------------------------------- #
    #: Publication gate for the static OSR-soundness verifier
    #: (:mod:`repro.analysis.soundness`): ``"off"`` publishes versions
    #: unchecked (the historical behaviour), ``"warn"`` publishes but
    #: emits a :class:`~repro.engine.events.SoundnessViolation` event per
    #: failed obligation, ``"strict"`` refuses publication with a typed
    #: :class:`~repro.analysis.soundness.UnsoundVersionError`.  ``None``
    #: defers to the ``REPRO_VERIFY_DEOPT`` environment variable at
    #: engine construction (default ``"off"``).  Deliberately not part of
    #: the artifact fingerprint: verification never changes what code is
    #: compiled, only whether it may be published.
    verify_deopt: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.hotness_threshold >= 1,
                 f"hotness_threshold must be >= 1, got {self.hotness_threshold}")
        _require(self.invalidate_after >= 1,
                 f"invalidate_after must be >= 1, got {self.invalidate_after}")
        _require(self.max_versions >= 1,
                 f"max_versions must be >= 1, got {self.max_versions}")
        _require(self.min_samples >= 1,
                 f"min_samples must be >= 1, got {self.min_samples}")
        _require(0.0 < self.min_ratio <= 1.0,
                 f"min_ratio must be in (0, 1], got {self.min_ratio}")
        _require(self.inline_min_calls >= 1,
                 f"inline_min_calls must be >= 1, got {self.inline_min_calls}")
        _require(self.max_callee_size >= 1,
                 f"max_callee_size must be >= 1, got {self.max_callee_size}")
        _require(self.max_inline_depth >= 1,
                 f"max_inline_depth must be >= 1, got {self.max_inline_depth}")
        _require(self.max_call_depth >= 1,
                 f"max_call_depth must be >= 1, got {self.max_call_depth}")
        _require(self.step_limit >= 1,
                 f"step_limit must be >= 1, got {self.step_limit}")
        _require(self.compile_workers >= 0,
                 f"compile_workers must be >= 0, got {self.compile_workers}")
        _require(self.event_buffer_size >= 1,
                 f"event_buffer_size must be >= 1, got {self.event_buffer_size}")
        _require(self.continuation_cache_size >= 1,
                 f"continuation_cache_size must be >= 1, "
                 f"got {self.continuation_cache_size}")
        _require(isinstance(self.mode, ReconstructionMode),
                 f"mode must be a ReconstructionMode, got {self.mode!r}")
        _require(self.verify_deopt in (None, "off", "warn", "strict"),
                 f"verify_deopt must be one of 'off', 'warn', 'strict' "
                 f"(or None for REPRO_VERIFY_DEOPT), got {self.verify_deopt!r}")
        if self.passes is not None and not isinstance(self.passes, tuple):
            # Accept any sequence at the call site; store a tuple so the
            # frozen config stays value-like.
            object.__setattr__(self, "passes", tuple(self.passes))
        self._validate_backend("opt_backend", self.opt_backend, allow_none=True)
        self._validate_backend("base_backend", self.base_backend, allow_none=False)

    @staticmethod
    def _validate_backend(label: str, spec: Any, *, allow_none: bool) -> None:
        # Deferred import: repro.vm imports this module at load time.
        from ..vm.backend import BACKEND_NAMES, ExecutionBackend

        if spec is None:
            _require(allow_none, f"{label} must not be None")
            return
        if isinstance(spec, ExecutionBackend):
            return
        _require(
            isinstance(spec, str) and spec in BACKEND_NAMES,
            f"{label}={spec!r} names no backend; choose from {sorted(BACKEND_NAMES)}",
        )

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_env(cls, **overrides: Any) -> "EngineConfig":
        """A config whose optimized-tier backend comes from ``REPRO_BACKEND``.

        The environment variable is read (and validated) *now*: an
        invalid value raises a :class:`ValueError` naming the registered
        backends instead of surfacing at first use.  Keyword overrides
        win over the environment.
        """
        from ..vm.backend import backend_name_from_env

        if "opt_backend" not in overrides:
            overrides["opt_backend"] = backend_name_from_env()
        if "verify_deopt" not in overrides:
            overrides["verify_deopt"] = verify_deopt_from_env()
        return cls(**overrides)

    @classmethod
    def from_legacy_kwargs(cls, **kwargs: Any) -> "EngineConfig":
        """Translate ``AdaptiveRuntime``'s historical kwargs to a config.

        Used by the deprecation shim only.  The historical default of
        ``base_backend=None`` meant "the interpreter"; the typed config
        spells that out.
        """
        unknown = sorted(set(kwargs) - set(LEGACY_KWARG_FIELDS))
        if unknown:
            raise TypeError(
                f"unknown AdaptiveRuntime argument(s) {unknown}; "
                f"known: {sorted(LEGACY_KWARG_FIELDS)}"
            )
        translated = {LEGACY_KWARG_FIELDS[key]: value for key, value in kwargs.items()}
        if translated.get("base_backend") is None:
            translated.pop("base_backend", None)
        if translated.get("passes") is not None:
            translated["passes"] = tuple(translated["passes"])
        return cls(**translated)

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Inverse of :meth:`as_dict` — ``from_dict(c.as_dict()) == c``.

        Accepts JSON-shaped input too: ``mode`` may be a mode name or
        value string, and ``passes`` any sequence.  Unknown keys raise
        (a config dict from a newer engine must not load silently).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig field(s) {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        mode = kwargs.get("mode")
        if isinstance(mode, str) and not isinstance(mode, ReconstructionMode):
            try:
                kwargs["mode"] = ReconstructionMode(mode)
            except ValueError:
                kwargs["mode"] = ReconstructionMode[mode.upper()]
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """A stable content hash of the semantically relevant fields.

        The persistent artifact store keys entries by this digest, so an
        artifact compiled under one speculation/inlining regime can never
        hydrate into an engine configured for another.  Only
        :data:`FINGERPRINT_FIELDS` participate: runtime-only knobs
        (``compile_workers``, buffer sizes, fuel, backend choice) are
        deliberately excluded so a 4-worker server can reuse what a
        single-threaded recorder compiled.  Pass pipelines hash by class
        name — the store cannot hash code objects, and a renamed pass
        *should* invalidate old artifacts.
        """
        payload: Dict[str, Any] = {}
        for name in FINGERPRINT_FIELDS:
            value = getattr(self, name)
            if name == "mode":
                value = value.value
            elif name == "passes" and value is not None:
                value = [getattr(p, "__name__", None) or type(p).__name__ for p in value]
            payload[name] = value
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # Derived, not stored: an explicit pipeline overrides speculation,
    # and inlining only exists inside the speculative tier.
    @property
    def effective_speculate(self) -> bool:
        return self.speculate and self.passes is None

    @property
    def effective_inline(self) -> bool:
        return self.inline and self.effective_speculate
