"""Engine statistics derived from the event stream.

The legacy runtime answered ``stats()`` from hand-maintained counters.
With the structured event bus in place, the transition counters are a
*fold* over the events instead: :class:`StatsCollector` subscribes to
the bus and reduces every :class:`~repro.engine.events.RuntimeEvent`
into a per-function :class:`EngineStats`.  Because the collector sees
events as they are published, its numbers are exact even when the
bounded ring buffer has evicted old events.

A few fields are gauges of the current mechanism state rather than
event counts — ``calls`` (warm calls deliberately emit no event) and
the installed-version facts (``compiled``/``speculative``/``guards``/
``inlined_frames``, seeded by ``TierUp`` and cleared by
``Invalidated``).  :meth:`Engine.stats` fills ``calls`` in at query
time; everything else is pure reduction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping

from .events import (
    REREGISTERED,
    ContinuationCached,
    ContinuationEvicted,
    DeoptimizingOSR,
    DispatchedOSR,
    EntryDispatched,
    GuardFailed,
    Invalidated,
    MultiFrameDeopt,
    OptimizingOSR,
    RuntimeEvent,
    SoundnessViolation,
    TierUp,
    VersionAdded,
    VersionRestored,
    VersionRetired,
)

__all__ = ["EngineStats", "StatsCollector"]


@dataclass(frozen=True)
class EngineStats:
    """Per-function tiering statistics (the typed successor of ``stats()``)."""

    calls: int = 0
    compiled: int = 0
    speculative: int = 0
    guards: int = 0
    inlined_frames: int = 0
    osr_entries: int = 0
    osr_exits: int = 0
    guard_failures: int = 0
    multiframe_deopts: int = 0
    invalidations: int = 0
    dispatch_hits: int = 0
    dispatch_misses: int = 0
    continuations: int = 0
    #: Live versions in the function's multiverse (gauge).
    versions: int = 0
    versions_added: int = 0
    versions_retired: int = 0
    entry_dispatches: int = 0
    #: Obligations the static soundness verifier failed in warn mode
    #: (strict mode raises instead and never publishes a version).
    soundness_violations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The legacy ``AdaptiveRuntime.stats()`` dict shape."""
        return {
            "calls": self.calls,
            "compiled": self.compiled,
            "speculative": self.speculative,
            "guards": self.guards,
            "inlined_frames": self.inlined_frames,
            "osr_entries": self.osr_entries,
            "osr_exits": self.osr_exits,
            "guard_failures": self.guard_failures,
            "multiframe_deopts": self.multiframe_deopts,
            "invalidations": self.invalidations,
            "dispatch_hits": self.dispatch_hits,
            "dispatch_misses": self.dispatch_misses,
            "continuations": self.continuations,
            "versions": self.versions,
            "versions_added": self.versions_added,
            "versions_retired": self.versions_retired,
            "entry_dispatches": self.entry_dispatches,
            "soundness_violations": self.soundness_violations,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "EngineStats":
        """Inverse of :meth:`as_dict` — ``from_dict(s.as_dict()) == s``.

        The JSON round-trip the CLI and metrics exporter rely on.
        Unknown keys raise (a stats dict from a newer engine must not
        load silently); missing keys default to zero so a reduced
        rendering still parses.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown EngineStats field(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**{key: int(value) for key, value in data.items()})


class StatsCollector:
    """A bus subscriber folding events into per-function `EngineStats`.

    The fold is a read-modify-write per event, so it is serialized by a
    lock: events published concurrently (request threads, background
    compile workers) are each folded exactly once — the stress suite
    asserts the reduction stays exact under contention.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, EngineStats] = {}
        self._lock = threading.Lock()

    def function(self, name: str) -> EngineStats:
        """The reduced stats for ``name`` (zeros if never observed)."""
        with self._lock:
            return self._stats.get(name, EngineStats())

    def functions(self) -> Dict[str, EngineStats]:
        with self._lock:
            return dict(self._stats)

    def __call__(self, event: RuntimeEvent) -> None:
        if isinstance(event, Invalidated) and event.reason == REREGISTERED:
            # A re-registration discards the whole per-name history, not
            # just the installed version: the mechanism starts a fresh
            # TieredFunction, so the fold starts a fresh EngineStats to
            # stay in exact agreement with it.  (Activations still
            # executing the superseded version may publish events after
            # this reset; agreement is guaranteed again once they drain.)
            with self._lock:
                self._stats[event.function] = EngineStats()
            return
        with self._lock:
            self._fold(event)

    def _fold(self, event: RuntimeEvent) -> None:
        stats = self._stats.get(event.function, EngineStats())
        if isinstance(event, (TierUp, VersionRestored)):
            # A warm-started version is indistinguishable from a locally
            # compiled one as far as the installed-version gauges go.
            stats = replace(
                stats,
                compiled=1,
                speculative=int(event.speculative),
                guards=event.guards,
                inlined_frames=event.inlined_frames,
                versions=event.versions,
            )
        elif isinstance(event, VersionAdded):
            stats = replace(
                stats,
                versions=event.versions,
                versions_added=stats.versions_added + 1,
            )
        elif isinstance(event, VersionRetired):
            stats = replace(
                stats,
                versions=event.versions,
                versions_retired=stats.versions_retired + 1,
                compiled=int(event.versions > 0),
                speculative=int(event.speculative),
                guards=event.guards,
                inlined_frames=event.inlined_frames,
                continuations=event.continuations,
            )
        elif isinstance(event, EntryDispatched):
            stats = replace(stats, entry_dispatches=stats.entry_dispatches + 1)
        elif isinstance(event, OptimizingOSR):
            stats = replace(stats, osr_entries=stats.osr_entries + 1)
        elif isinstance(event, GuardFailed):
            stats = replace(stats, guard_failures=stats.guard_failures + 1)
        elif isinstance(event, MultiFrameDeopt):
            stats = replace(
                stats,
                osr_exits=stats.osr_exits + 1,
                multiframe_deopts=stats.multiframe_deopts + 1,
            )
        elif isinstance(event, DeoptimizingOSR):
            stats = replace(
                stats,
                osr_exits=stats.osr_exits + 1,
                dispatch_misses=stats.dispatch_misses + int(event.from_guard),
            )
        elif isinstance(event, DispatchedOSR):
            stats = replace(stats, dispatch_hits=stats.dispatch_hits + 1)
        elif isinstance(event, ContinuationCached):
            stats = replace(stats, continuations=stats.continuations + 1)
        elif isinstance(event, ContinuationEvicted):
            stats = replace(stats, continuations=stats.continuations - 1)
        elif isinstance(event, SoundnessViolation):
            stats = replace(
                stats,
                soundness_violations=stats.soundness_violations + 1,
            )
        elif isinstance(event, Invalidated):
            # The discarded version's gauges are replaced by the payload
            # of the surviving newest version (all zeros — the historical
            # full reset — when the multiverse is now empty); its
            # continuations died with it.
            stats = replace(
                stats,
                invalidations=stats.invalidations + 1,
                compiled=int(event.versions > 0),
                speculative=int(event.speculative),
                guards=event.guards,
                inlined_frames=event.inlined_frames,
                continuations=event.continuations,
                versions=event.versions,
            )
        self._stats[event.function] = stats
