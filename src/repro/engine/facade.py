"""The `Engine` facade: one object from source text to tiered execution.

Embedders used to hand-stitch frontend → lowering → mem2reg →
``register_module`` and then poke at ``AdaptiveRuntime`` internals.
:class:`Engine` packages that whole flow:

    from repro.engine import Engine, EngineConfig

    engine = Engine.from_source(SOURCE)          # parse, lower, register
    fib = engine.function("fib")                 # a callable handle
    for _ in range(5):
        fib(20)                                  # warm → tier-up
    print(fib.tier, fib.stats.osr_entries)

    unsubscribe = engine.subscribe(print)        # typed RuntimeEvents

An :class:`Engine` owns the event bus (with its bounded ring-buffer
recorder), a :class:`~repro.engine.stats.StatsCollector` reducing the
event stream into per-function :class:`~repro.engine.stats.EngineStats`,
and the :class:`~repro.vm.runtime.AdaptiveRuntime` mechanism configured
by a frozen :class:`~repro.engine.config.EngineConfig` and steered by a
pluggable :class:`~repro.engine.policy.TieringPolicy`.

One engine may serve any number of threads concurrently: handles are
shareable, calls are safe to interleave, and with
``EngineConfig.compile_workers >= 1`` tier-up work runs on a bounded
background pool instead of stalling the triggering call (use the
engine as a context manager, or call :meth:`Engine.close`, to stop the
pool deterministically).  See the README's "Concurrency & background
compilation" section for the full threading model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..frontend import compile_program
from ..ir.function import Function, Module, ProgramPoint
from ..ir.interp import ExecutionResult, Memory
from ..vm.profile import FunctionProfile
from ..vm.runtime import AdaptiveRuntime, TieredFunction
from .config import EngineConfig
from .events import EventBus, RingBufferRecorder, RuntimeEvent, Subscriber, Tier
from .policy import TieringPolicy
from .stats import EngineStats, StatsCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.artifacts import ArtifactKey
    from ..store.persist import ArtifactStore, EngineSnapshot

__all__ = ["Engine", "FunctionHandle", "EngineSnapshot", "VersionInfo"]

#: What callers may pass wherever a store is expected.
StoreLike = Union["ArtifactStore", str, Path]


def __getattr__(name: str):
    # Re-exported here so ``from repro.engine import EngineSnapshot`` works
    # without the facade importing the store package at module load.
    if name == "EngineSnapshot":
        from ..store.persist import EngineSnapshot

        return EngineSnapshot
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class VersionInfo:
    """A read-only description of one installed version.

    The supported replacement for reaching through ``handle.state`` into
    runtime internals: the current :class:`~repro.engine.events.Tier`,
    whether the version speculates (and on how many guards), how many
    frames its deopt plans reconstruct, and the
    :class:`~repro.store.artifacts.ArtifactKey` the version would be
    persisted under (``None`` while the function is base-tier).

    With a version multiverse (``EngineConfig.max_versions > 1``) a
    function may hold several of these at once — one per entry-profile
    cluster; see :attr:`FunctionHandle.versions`.  ``key`` renders the
    version's :class:`~repro.vm.profile.VersionKey` (``"generic"`` for
    the unspecialized build), ``hits`` counts the entry dispatches it
    served, and ``dispatched`` marks the version the most recent call
    selected.
    """

    tier: Tier
    speculative: bool
    guards: int
    inlined_frames: int
    artifact_key: Optional["ArtifactKey"]
    key: str = "generic"
    hits: int = 0
    dispatched: bool = False

    @property
    def is_compiled(self) -> bool:
        return self.tier is Tier.OPTIMIZED


class FunctionHandle:
    """A callable view of one registered function.

    Calling the handle runs the function through the engine's tiering
    (``handle(3, 4)`` returns the result value); :meth:`call` returns
    the full :class:`~repro.ir.interp.ExecutionResult` when the caller
    needs the final environment or the shared memory.  The properties
    expose the function's current tier, its value/branch/call-site
    profile, and its event-derived statistics.
    """

    def __init__(self, engine: "Engine", name: str) -> None:
        self._engine = engine
        self.name = name

    def __call__(self, *args: int, memory: Optional[Memory] = None) -> Optional[int]:
        return self.call(args, memory=memory).value

    def call(
        self, args: Sequence[int] = (), *, memory: Optional[Memory] = None
    ) -> ExecutionResult:
        return self._engine.call(self.name, args, memory=memory)

    @property
    def state(self) -> TieredFunction:
        """The runtime's mechanism-level per-function state."""
        return self._engine.runtime.functions[self.name]

    @property
    def tier(self) -> Tier:
        """The installed-version :class:`Tier` (string-comparable)."""
        return Tier.OPTIMIZED if self.state.is_compiled else Tier.BASE

    @property
    def version(self) -> VersionInfo:
        """A read-only :class:`VersionInfo` for the installed version.

        Prefer this over ``handle.state`` (mechanism internals): it is a
        stable snapshot — safe to hold across tier transitions — and it
        carries the artifact key the version persists under.
        """
        infos = self.versions
        if not infos:
            return VersionInfo(
                tier=Tier.BASE,
                speculative=False,
                guards=0,
                inlined_frames=0,
                artifact_key=None,
            )
        return infos[-1]

    @property
    def versions(self) -> List[VersionInfo]:
        """The live version multiverse, oldest first (read-only).

        One frozen :class:`VersionInfo` per installed version, each
        carrying its entry-profile ``key`` and dispatch ``hits``; the
        version the most recent call dispatched to has
        ``dispatched=True``.  Empty while the function is base-tier;
        a single generic entry reproduces the pre-multiverse view.
        """
        state = self.state
        with state.lock:
            entries = [
                (entry.key, entry.version, entry.hits) for entry in state.versions
            ]
            dispatched_key = state.last_dispatched_key
        if not entries:
            return []
        from ..store.artifacts import ArtifactKey, function_ir_hash

        artifact_key = ArtifactKey(
            function=self.name,
            base_ir_hash=function_ir_hash(state.base),
            config_fingerprint=self._engine.config.fingerprint(),
        )
        return [
            VersionInfo(
                tier=Tier.OPTIMIZED,
                speculative=version.speculative,
                guards=len(version.pair.guard_points()),
                inlined_frames=version.inlined_frames,
                artifact_key=artifact_key,
                key=str(key),
                hits=hits,
                dispatched=key == dispatched_key,
            )
            for key, version, hits in entries
        ]

    @property
    def speculative(self) -> bool:
        return self.state.speculative

    @property
    def profile(self) -> FunctionProfile:
        """The base tier's value/branch/call-site profile."""
        return self._engine.runtime.profile.function(self.name)

    @property
    def stats(self) -> EngineStats:
        return self._engine.stats(self.name)

    def introspect(self) -> Dict[str, object]:
        """A JSON-safe snapshot of this function's full tier state.

        The operator view behind ``repro inspect``: the live version
        table with per-version dispatch hits and per-guard failure
        counters, the continuation cache's entries, refuted speculation
        reasons per version key, and the compile pipeline's in-flight
        claim.  See :meth:`repro.vm.runtime.AdaptiveRuntime.introspect`.
        """
        return self._engine.runtime.introspect(self.name)

    def deopt_points(self) -> List[ProgramPoint]:
        """The optimized-code points supporting forced deoptimization.

        Compiles the function first if necessary; any returned point is a
        valid argument to :meth:`deoptimize_at`.
        """
        return [
            point
            for point in self._engine.runtime.deopt_mapping(self.name).domain()
            if isinstance(point, ProgramPoint)
        ]

    def deoptimize_at(
        self,
        point: ProgramPoint,
        args: Sequence[int],
        *,
        memory: Optional[Memory] = None,
    ) -> ExecutionResult:
        """Force an external deoptimizing OSR at ``point`` (see runtime)."""
        return self._engine.runtime.deoptimize_at(
            self.name, point, args, memory=memory
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionHandle({self.name!r}, tier={self.tier.value!r})"


class Engine:
    """The embedding facade over the adaptive runtime."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        policy: Optional[TieringPolicy] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.bus = EventBus(RingBufferRecorder(self.config.event_buffer_size))
        self._collector = StatsCollector()
        self.bus.subscribe(self._collector)
        self.runtime = AdaptiveRuntime(self.config, policy=policy, bus=self.bus)
        self._handles: Dict[str, FunctionHandle] = {}
        #: Names whose compiled tier was re-installed from a store by
        #: :meth:`Engine.open` (empty for cold-started engines).
        self.restored_functions: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_source(
        cls,
        source: str,
        *,
        config: Optional[EngineConfig] = None,
        policy: Optional[TieringPolicy] = None,
        module_name: str = "minic",
    ) -> "Engine":
        """Frontend → lowering → mem2reg → registration, in one call.

        ``source`` is a MiniC program (one or more ``func`` definitions);
        every function is registered for independent tiering.
        """
        module = compile_program(source, module_name=module_name)
        return cls.from_module(module, config=config, policy=policy)

    @classmethod
    def from_module(
        cls,
        module: Module,
        *,
        config: Optional[EngineConfig] = None,
        policy: Optional[TieringPolicy] = None,
    ) -> "Engine":
        engine = cls(config, policy=policy)
        engine.register_module(module)
        return engine

    @classmethod
    def from_functions(
        cls,
        *functions: Function,
        config: Optional[EngineConfig] = None,
        policy: Optional[TieringPolicy] = None,
    ) -> "Engine":
        engine = cls(config, policy=policy)
        for function in functions:
            engine.register(function)
        return engine

    @classmethod
    def open(
        cls,
        source: str,
        store: StoreLike,
        *,
        config: Optional[EngineConfig] = None,
        policy: Optional[TieringPolicy] = None,
        on_stale: str = "error",
        module_name: str = "minic",
    ) -> "Engine":
        """Warm-start an engine: compile ``source``, then hydrate from ``store``.

        Every registered function with a matching artifact (same base-IR
        hash, same config fingerprint, all deopt-plan callees unchanged)
        gets its persisted profile folded in and its compiled tier
        re-installed — the first call runs optimized with **zero**
        ``TierUp`` events (a ``VersionRestored`` event is published per
        restored function instead).  A mismatched artifact raises a
        typed :class:`~repro.store.artifacts.StaleArtifactError` /
        :class:`~repro.store.artifacts.ConfigMismatchError` unless
        ``on_stale="skip"``, which leaves those functions cold.

        ``store`` may be an :class:`~repro.store.persist.ArtifactStore`
        or a path to one.  Restored names land in
        :attr:`restored_functions`.
        """
        from ..store.persist import hydrate_runtime

        engine = cls.from_source(
            source, config=config, policy=policy, module_name=module_name
        )
        engine.restored_functions = tuple(
            hydrate_runtime(engine.runtime, store, on_stale=on_stale)
        )
        return engine

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #
    def snapshot(self) -> "EngineSnapshot":
        """Export everything this engine has learned, as pure data.

        Waits for in-flight background compiles first (so a snapshot
        taken right after warming captures the optimized tier), then
        captures one artifact per registered function: the merged
        profile, and the installed compiled version (optimized IR,
        per-guard deopt plans, OSR mappings) when there is one.
        """
        from ..store.persist import snapshot_runtime

        self.wait_for_compilation()
        return snapshot_runtime(self.runtime)

    def save(self, store: StoreLike) -> List["ArtifactKey"]:
        """Snapshot and publish to ``store`` (merge-and-republish).

        Profiles accumulate into existing entries under per-entry file
        locks — concurrent savers (the worker fleet) merge rather than
        clobber.  Returns the published artifact keys.
        """
        return self.snapshot().save(store)

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the background compile pool (idempotent).

        In-flight compiles finish (and publish) first; registered
        functions keep working in whatever tier they reached.  Only
        meaningful with ``compile_workers >= 1`` — a no-op otherwise.
        """
        self.runtime.shutdown()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def wait_for_compilation(
        self, name: Optional[str] = None, *, timeout: Optional[float] = None
    ) -> bool:
        """Block until in-flight background compiles finish.

        With ``name`` waits for that function only; otherwise for every
        registered function.  Returns ``False`` on timeout.  Useful for
        tests and benchmarks that want the optimized steady state before
        measuring.
        """
        return self.runtime.wait_for_compilation(name, timeout=timeout)

    # ------------------------------------------------------------------ #
    # Registration and lookup.
    # ------------------------------------------------------------------ #
    def register(self, function: Function, *, replace: bool = False) -> FunctionHandle:
        """Register ``function`` for tiering.

        A name collision raises unless ``replace=True``, which discards
        the old version (publishing ``Invalidated(reason=REREGISTERED)``
        and resetting that name's statistics and profile) — see
        :meth:`repro.vm.runtime.AdaptiveRuntime.register`.
        """
        self.runtime.register(function, replace=replace)
        return self.function(function.name)

    def register_module(
        self, module: Module, *, replace: bool = False
    ) -> List[FunctionHandle]:
        self.runtime.register_module(module, replace=replace)
        return [self.function(function.name) for function in module]

    def function(self, name: str) -> FunctionHandle:
        if name not in self.runtime.functions:
            raise KeyError(f"no function @{name} is registered with this engine")
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = FunctionHandle(self, name)
        return handle

    def __contains__(self, name: str) -> bool:
        return name in self.runtime.functions

    def function_names(self) -> List[str]:
        return list(self.runtime.functions)

    # ------------------------------------------------------------------ #
    # Execution and observation.
    # ------------------------------------------------------------------ #
    def call(
        self,
        name: str,
        args: Sequence[int] = (),
        *,
        memory: Optional[Memory] = None,
    ) -> ExecutionResult:
        return self.runtime.call(name, args, memory=memory)

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Observe every :class:`RuntimeEvent`; returns an unsubscriber."""
        return self.bus.subscribe(subscriber)

    @property
    def events(self) -> List[RuntimeEvent]:
        """Typed events retained by the bounded ring-buffer recorder."""
        return self.bus.events()

    def stats(self, name: str) -> EngineStats:
        """Event-derived stats for ``name`` (+ the live call-count gauge).

        Warm calls deliberately publish no event, so ``calls`` is read
        from the mechanism; every transition counter is the event fold.
        """
        from dataclasses import replace

        state = self.runtime.functions[name]
        return replace(self._collector.function(name), calls=state.call_count)

    def stats_dict(self, name: str) -> Dict[str, int]:
        """The legacy ``AdaptiveRuntime.stats()`` dict, from EngineStats."""
        return self.stats(name).as_dict()

    def stats_all(self) -> Dict[str, EngineStats]:
        """Per-function :class:`EngineStats` for every registered function."""
        return {name: self.stats(name) for name in self.runtime.functions}
