"""The public embedding API of the adaptive OSR runtime.

Three pieces replace the historical ``AdaptiveRuntime(**kwargs)``
surface (*OSR à la Carte*'s "OSR as a composable library" argument,
with *Deoptless*'s policy knobs made first-class):

* :class:`EngineConfig` — every tuning knob as one frozen, validated
  value; :meth:`EngineConfig.from_env` subsumes ``REPRO_BACKEND``.
* :class:`TieringPolicy` — the strategy protocol deciding *when* to
  compile, where to OSR-enter, whether to cache a continuation and when
  to invalidate; :class:`HotnessPolicy` is the default,
  :class:`AlwaysCompile`/:class:`NeverCompile` pin tiers for tests.
* :class:`Engine` — the facade: :meth:`Engine.from_source` runs
  frontend → lowering → mem2reg → registration in one call,
  :meth:`Engine.function` returns a callable :class:`FunctionHandle`,
  and :meth:`Engine.subscribe` observes every tier transition as a
  typed :class:`RuntimeEvent`.
"""

from .config import EngineConfig
from .events import (
    EVENT_TYPES,
    REREGISTERED,
    ContinuationCached,
    ContinuationEvicted,
    ContinuationHit,
    DeoptimizingOSR,
    DispatchedOSR,
    EntryDispatched,
    EventBus,
    GuardFailed,
    Invalidated,
    MultiFrameDeopt,
    OptimizingOSR,
    OSREntryRejected,
    RingBufferRecorder,
    RuntimeEvent,
    SoundnessViolation,
    SpeculationRejected,
    Tier,
    TierUp,
    VersionAdded,
    VersionRestored,
    VersionRetired,
    event_as_dict,
    event_from_dict,
)
from .policy import AlwaysCompile, HotnessPolicy, NeverCompile, TieringPolicy
from .stats import EngineStats, StatsCollector


def __getattr__(name):
    # The facade pulls in repro.vm (which itself loads repro.engine.config
    # at import time); loading it lazily keeps `import repro.vm` and
    # `import repro.engine` both cycle-free regardless of order.
    if name in ("Engine", "FunctionHandle", "EngineSnapshot", "VersionInfo"):
        from . import facade

        return getattr(facade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Engine",
    "FunctionHandle",
    "EngineSnapshot",
    "VersionInfo",
    "EngineConfig",
    "Tier",
    "TieringPolicy",
    "HotnessPolicy",
    "AlwaysCompile",
    "NeverCompile",
    "EngineStats",
    "StatsCollector",
    "RuntimeEvent",
    "TierUp",
    "VersionRestored",
    "VersionAdded",
    "VersionRetired",
    "EntryDispatched",
    "SpeculationRejected",
    "OptimizingOSR",
    "OSREntryRejected",
    "GuardFailed",
    "DeoptimizingOSR",
    "DispatchedOSR",
    "ContinuationHit",
    "ContinuationCached",
    "ContinuationEvicted",
    "MultiFrameDeopt",
    "SoundnessViolation",
    "Invalidated",
    "REREGISTERED",
    "EventBus",
    "RingBufferRecorder",
    "EVENT_TYPES",
    "event_as_dict",
    "event_from_dict",
]
