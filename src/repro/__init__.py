"""repro — a reproduction of "On-Stack Replacement, Distilled" (PLDI 2018).

The package is organized the way the paper is:

* :mod:`repro.formal`, :mod:`repro.ctl`, :mod:`repro.rewrite` — the
  abstract framework of Sections 2–4 (minimal language, CTL predicates,
  LVE rewrite rules);
* :mod:`repro.ir`, :mod:`repro.cfg`, :mod:`repro.analysis`,
  :mod:`repro.ssa`, :mod:`repro.passes`, :mod:`repro.frontend` — the
  compiler substrate standing in for LLVM (Section 5);
* :mod:`repro.core` — the OSR framework itself: CodeMapper, OSR mappings,
  ``reconstruct`` (Algorithm 1), OSRKit-style transitions, and the
  optimized-code debugging machinery of Section 7;
* :mod:`repro.vm` — a TinyVM-like adaptive runtime;
* :mod:`repro.workloads`, :mod:`repro.harness` — the evaluation.

Quickstart::

    from repro.frontend import compile_function
    from repro.core import OSRTransDriver
    from repro.passes import standard_pipeline

    f = compile_function("func f(n) { var s = 0; var i = 0; "
                         "while (i < n) { s = s + i * 2; i = i + 1; } return s; }")
    pair = OSRTransDriver(standard_pipeline()).run(f)
    mapping = pair.forward_mapping()      # f_base → f_opt, with compensation code
"""

__version__ = "1.0.0"

__all__ = [
    "ir",
    "cfg",
    "analysis",
    "formal",
    "ctl",
    "rewrite",
    "ssa",
    "passes",
    "frontend",
    "core",
    "vm",
    "engine",
    "workloads",
    "harness",
]
