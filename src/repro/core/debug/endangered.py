"""Endangered-variable analysis for optimized-code debugging (Section 7).

A scalar user variable is *endangered* at a breakpoint when the register
that carries its source-level value in the unoptimized version
(``f_base``) is not guaranteed to hold that value in the optimized version
(``f_opt``) at the corresponding location — because the defining
instruction was deleted, moved or became dead.  In the framework's terms:
the binding register is not live at the optimized point, so the
live-variable-bisimulation guarantee does not apply to it.

``analyze_function`` inspects every optimized-code location whose
deoptimization landing point corresponds to a source-level location
(i.e. a possible breakpoint) and reports, per location, which user
variables are reported correctly and which are endangered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...ir.expr import Const, Expr, Var
from ...ir.function import ProgramPoint
from ...ir.instructions import Phi
from ..osr_trans import VersionPair
from .debuginfo import DebugInfo

__all__ = ["BreakpointReport", "EndangeredAnalysis", "analyze_function"]


@dataclass
class BreakpointReport:
    """User-variable status at one optimized-code breakpoint location."""

    opt_point: ProgramPoint
    base_point: ProgramPoint
    source_line: Optional[int]
    #: variable name → binding expression in f_base at this location.
    bindings: Dict[str, Expr]
    #: variables whose value a debugger would report correctly.
    correct: List[str]
    #: variables whose reported value may be wrong (endangered).
    endangered: List[str]

    @property
    def has_endangered(self) -> bool:
        return bool(self.endangered)


@dataclass
class EndangeredAnalysis:
    """Per-function summary of the endangered-variable analysis."""

    function_name: str
    base_size: int
    optimized: bool
    reports: List[BreakpointReport] = field(default_factory=list)

    @property
    def breakpoint_count(self) -> int:
        return len(self.reports)

    @property
    def affected_points(self) -> List[BreakpointReport]:
        return [r for r in self.reports if r.has_endangered]

    @property
    def is_endangered(self) -> bool:
        return bool(self.affected_points)

    def fraction_affected(self) -> float:
        """Fraction of source-level locations with ≥1 endangered user variable."""
        if not self.reports:
            return 0.0
        return len(self.affected_points) / len(self.reports)

    def endangered_counts(self) -> List[int]:
        """Number of endangered variables at each affected point."""
        return [len(r.endangered) for r in self.affected_points]


def analyze_function(pair: VersionPair, debug: DebugInfo) -> EndangeredAnalysis:
    """Run the endangered-variable analysis on an optimized/unoptimized pair.

    For every point of ``f_opt`` whose deoptimization landing point in
    ``f_base`` corresponds to a source location, the user variables bound
    there are classified:

    * **correct** — the binding is a constant, or a register live at both
      the optimized point and the landing point (LVB ⇒ same value);
    * **endangered** — everything else: the register is dead, deleted or
      renamed at the optimized location, so the debugger cannot trust it.
    """
    analysis = EndangeredAnalysis(
        function_name=pair.base.name,
        base_size=pair.base.num_instructions(),
        optimized=bool(pair.mapper.actions),
    )

    seen_base_points = set()
    for opt_point in pair.optimized.program_points():
        # Phi nodes are not breakpoint locations (they have no source
        # counterpart and execute "on the edge"); skip them so liveness is
        # always compared after the phi run on both sides.
        if isinstance(pair.optimized.instruction_at(opt_point), Phi):
            continue
        base_point = pair.mapper.corresponding_original_point(opt_point)
        if base_point is None:
            continue
        base_inst = pair.base.instruction_at(base_point)
        if base_inst.source_line is None:
            continue
        # Report each source location once (multiple optimized points can
        # map to the same landing instruction).
        if base_point in seen_base_points:
            continue
        seen_base_points.add(base_point)

        bindings = debug.bindings_at(base_inst.uid)
        if not bindings:
            continue

        opt_live = pair.opt_view.live_in(opt_point)
        base_live = pair.base_view.live_in(base_point)

        correct: List[str] = []
        endangered: List[str] = []
        for var_name, value in sorted(bindings.items()):
            if isinstance(value, Const):
                correct.append(var_name)
                continue
            # A register-carried variable is endangered when the register
            # is still live at the landing point in f_base (the source
            # level expects it) but optimization killed it at the
            # breakpoint in f_opt.  Registers dead in *both* versions are
            # not an optimization-induced problem (an unoptimized debugger
            # would be equally unable to show them), and registers live in
            # f_opt hold the correct value by live-variable bisimilarity.
            from ...ir.expr import free_vars

            registers = (
                [value.name] if isinstance(value, Var) else sorted(free_vars(value))
            )
            if all(reg in opt_live or reg not in base_live for reg in registers):
                correct.append(var_name)
            else:
                endangered.append(var_name)

        analysis.reports.append(
            BreakpointReport(
                opt_point=opt_point,
                base_point=base_point,
                source_line=base_inst.source_line,
                bindings=bindings,
                correct=correct,
                endangered=endangered,
            )
        )
    return analysis
