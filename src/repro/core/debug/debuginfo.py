"""Debug metadata: mapping source variables to IR registers.

The MiniC frontend lowers every source variable to a stack slot and
registers it here (the analogue of ``llvm.dbg.declare``).  When
``mem2reg`` promotes the slot, it records which register or constant
carries the variable's value at every surviving instruction (the analogue
of ``llvm.dbg.value``).  Bindings are keyed by instruction *uid* rather
than by program point, so they remain valid regardless of later edits to
cloned versions of the function — exactly the property LLVM metadata has
of being transparent to transformation passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...ir.expr import Expr, Var
from ...ir.function import Function, ProgramPoint

__all__ = ["SourceVariable", "DebugInfo"]


@dataclass(frozen=True)
class SourceVariable:
    """A scalar user variable of the source program."""

    name: str
    slot: str            # the alloca register that originally held it
    declared_line: int = 0

    def __str__(self) -> str:
        return self.name


class DebugInfo:
    """Per-function debug metadata (source variables, bindings, locations)."""

    def __init__(self, function_name: str) -> None:
        self.function_name = function_name
        #: Declared source variables, in declaration order.
        self.variables: List[SourceVariable] = []
        self._by_slot: Dict[str, SourceVariable] = {}
        #: instruction uid → (source variable name → register/constant expression
        #: holding its value just before that instruction executes).
        self.bindings_by_uid: Dict[int, Dict[str, Expr]] = {}
        #: slot → SSA names created for it by mem2reg (informational).
        self.promotions: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # Population (frontend + mem2reg).
    # ------------------------------------------------------------------ #
    def declare_variable(self, name: str, slot: str, line: int = 0) -> SourceVariable:
        """Register a source variable and the stack slot that holds it."""
        variable = SourceVariable(name, slot, line)
        self.variables.append(variable)
        self._by_slot[slot] = variable
        return variable

    def record_promotion(self, slot: str, ssa_names: List[str]) -> None:
        """Called by mem2reg when a slot is promoted to SSA registers."""
        self.promotions[slot] = list(ssa_names)

    def record_binding(self, uid: int, slot: str, value: Expr) -> None:
        """Record that, just before instruction ``uid``, ``slot``'s variable is ``value``."""
        variable = self._by_slot.get(slot)
        if variable is None:
            return
        self.bindings_by_uid.setdefault(uid, {})[variable.name] = value

    # ------------------------------------------------------------------ #
    # Queries (debugger / Section 7 analysis).
    # ------------------------------------------------------------------ #
    def variable_names(self) -> List[str]:
        return [v.name for v in self.variables]

    def bindings_at(self, inst_uid: int) -> Dict[str, Expr]:
        """Source variable → value expression at the given instruction."""
        return dict(self.bindings_by_uid.get(inst_uid, {}))

    def user_registers_at(self, inst_uid: int) -> Dict[str, str]:
        """Source variable → register name, for variables currently held in registers."""
        result: Dict[str, str] = {}
        for name, value in self.bindings_by_uid.get(inst_uid, {}).items():
            if isinstance(value, Var):
                result[name] = value.name
        return result

    def source_points(self, function: Function) -> List[ProgramPoint]:
        """Program points of ``function`` that correspond to source locations.

        A point corresponds to a source location when its instruction has a
        source line attached — those are the positions at which a debugger
        could place a breakpoint.
        """
        return [
            point
            for point, inst in function.instructions()
            if inst.source_line is not None
        ]

    def __repr__(self) -> str:
        return (
            f"<DebugInfo @{self.function_name}: {len(self.variables)} variables, "
            f"{len(self.bindings_by_uid)} binding sites>"
        )
