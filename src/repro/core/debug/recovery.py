"""Recovering endangered variables with ``reconstruct`` (Section 7.2/7.4).

For every endangered user variable at a breakpoint, try to rebuild its
source-level value from the state of the optimized code, using the same
Algorithm 1 machinery that powers OSR compensation code:

* the **live** strategy may only read registers live at the breakpoint in
  the optimized code (what a stock debugger can see);
* the **avail** strategy may additionally read values that have been
  computed but are no longer live — a debugger realizes this with
  invisible breakpoints that spill such values before they are clobbered,
  and the set of values it must preserve is the *keep set* reported in
  Table 5.

``measure_recoverability`` produces the per-function average
recoverability ratio that Figure 9 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ...ir.expr import Var, free_vars
from ..osr_trans import VersionPair
from ..reconstruct import (
    CannotReconstruct,
    ReconstructionMode,
    reconstruct_variable,
)
from .debuginfo import DebugInfo
from .endangered import BreakpointReport, EndangeredAnalysis, analyze_function

__all__ = ["RecoveryReport", "measure_recoverability"]


@dataclass
class RecoveryReport:
    """Recoverability of endangered user variables for one function."""

    function_name: str
    base_size: int
    endangered_analysis: EndangeredAnalysis
    #: per affected breakpoint: (endangered count, recovered with live,
    #: recovered with avail)
    per_point: List[Tuple[int, int, int]] = field(default_factory=list)
    #: values the avail strategy needs preserved (the paper's keep set).
    keep_set: Set[str] = field(default_factory=set)

    def average_ratio(self, mode: ReconstructionMode) -> float:
        """Average across affected points of recovered/endangered."""
        ratios: List[float] = []
        for endangered, live_ok, avail_ok in self.per_point:
            if endangered == 0:
                continue
            recovered = live_ok if mode is ReconstructionMode.LIVE else avail_ok
            ratios.append(recovered / endangered)
        return sum(ratios) / len(ratios) if ratios else 1.0

    @property
    def needs_keep_values(self) -> bool:
        return bool(self.keep_set)


def measure_recoverability(pair: VersionPair, debug: DebugInfo) -> RecoveryReport:
    """Evaluate how many endangered variables ``reconstruct`` can recover."""
    analysis = analyze_function(pair, debug)
    report = RecoveryReport(
        function_name=pair.base.name,
        base_size=pair.base.num_instructions(),
        endangered_analysis=analysis,
    )

    for breakpoint_report in analysis.affected_points:
        endangered = breakpoint_report.endangered
        live_recovered = 0
        avail_recovered = 0
        for var_name in endangered:
            binding = breakpoint_report.bindings[var_name]
            registers = (
                [binding.name]
                if isinstance(binding, Var)
                else sorted(free_vars(binding))
            )
            if _recoverable(pair, breakpoint_report, registers, ReconstructionMode.LIVE):
                live_recovered += 1
                avail_recovered += 1
                continue
            keep: Set[str] = set()
            if _recoverable(
                pair, breakpoint_report, registers, ReconstructionMode.AVAIL, keep
            ):
                avail_recovered += 1
                report.keep_set |= keep
        report.per_point.append((len(endangered), live_recovered, avail_recovered))
    return report


def _recoverable(
    pair: VersionPair,
    breakpoint_report: BreakpointReport,
    registers: List[str],
    mode: ReconstructionMode,
    keep_out: Optional[Set[str]] = None,
) -> bool:
    """Can every register of the binding be rebuilt from the optimized state?

    The reconstruction runs *from* the optimized code's state at the
    breakpoint *towards* the unoptimized version's landing point — the
    same direction as a deoptimizing OSR.
    """
    src_view = pair.opt_view
    dst_view = pair.base_view
    src_point = breakpoint_report.opt_point
    dst_point = breakpoint_report.base_point

    visited: Set[object] = set()
    keep: Set[str] = set()
    try:
        for register in registers:
            reconstruct_variable(
                register,
                src_view,
                src_point,
                dst_view,
                dst_point,
                dst_point,
                mode=mode,
                visited=visited,
                keep_alive=keep,
                single_assignment=src_view.single_assignment and dst_view.single_assignment,
            )
    except CannotReconstruct:
        return False
    if keep_out is not None:
        keep_out |= keep
    return True
