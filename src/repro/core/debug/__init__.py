"""Optimized-code debugging support (Section 7)."""

from .debuginfo import DebugInfo, SourceVariable
from .endangered import BreakpointReport, EndangeredAnalysis, analyze_function
from .recovery import RecoveryReport, measure_recoverability

__all__ = [
    "DebugInfo",
    "SourceVariable",
    "BreakpointReport",
    "EndangeredAnalysis",
    "analyze_function",
    "RecoveryReport",
    "measure_recoverability",
]
