"""Multi-frame deoptimization: reconstructing a virtual call stack.

Speculative inlining (:mod:`repro.passes.inline`) erases call
boundaries: a guard that fires inside an inlined body is, logically, a
guard firing *inside a callee activation that was never created*.  The
backward mapping at such a point therefore does not yield a single
``(landing point, compensation)`` pair, but a **stack** of frames:

* the innermost frame is the inlined callee's own f_base, landed at the
  point the frame's :class:`~repro.core.codemapper.CodeMapper` view maps
  the guard to, with an environment rebuilt *in the callee's namespace*
  (the inliner's injective renaming is inverted, and Algorithm 1 runs
  against the callee's own liveness);
* each enclosing frame is the parent version (another inlined callee,
  or ultimately the caller's f_base) paused *after* its call site, with
  the call's destination register left to be bound from the inner
  frame's return value (``assume_defined`` in
  :func:`~repro.core.reconstruct.build_compensation`).

A guard between the splice's argument bindings deoptimizes to the call
instruction itself — nothing of the callee has run — which degenerates
to a single caller frame landing *at* the call, re-executed by the base
tier.

:func:`build_deopt_plans` computes one :class:`DeoptPlan` per guard of
an optimized version and reports the guards it cannot cover; the
adaptive runtime installs speculation only when the uncovered list is
empty, and materializes the plan's :class:`FrameState` stack when a
guard fires.  It also stamps the optimized function's
``"inline_paths"`` metadata so both execution backends can attach the
virtual stack to the :class:`~repro.ir.interp.GuardFailure` they raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..ir.expr import Expr, Var, evaluate, free_vars, substitute
from ..ir.function import Function, ProgramPoint
from .codemapper import InlinedFrame
from .compensation import CompensationCode
from .reconstruct import CannotReconstruct, ReconstructionMode, build_compensation

__all__ = [
    "RenamedView",
    "FramePlan",
    "FrameState",
    "DeoptPlan",
    "build_deopt_plans",
]


class RenamedView:
    """A liveness/availability view translated into a frame's namespace.

    Wraps the optimized function's view and renames the registers that
    belong to one inlined frame back to the callee's own names; registers
    outside the frame disappear.  Only the *source-side* queries of
    Algorithm 1 are provided (``live_in`` / ``available_at``) — the
    destination side always uses the callee's pristine view.
    """

    def __init__(self, inner, inverse_rename: Mapping[str, str]) -> None:
        self.inner = inner
        self.inverse_rename = dict(inverse_rename)
        self.single_assignment = bool(getattr(inner, "single_assignment", False))

    def _translate(self, names) -> FrozenSet[str]:
        return frozenset(
            self.inverse_rename[name] for name in names if name in self.inverse_rename
        )

    def live_in(self, point) -> FrozenSet[str]:
        return self._translate(self.inner.live_in(point))

    def available_at(self, point) -> FrozenSet[str]:
        return self._translate(self.inner.available_at(point))


@dataclass
class FramePlan:
    """How to rebuild one base-tier frame from a failing guard's state."""

    #: The base-tier function this frame resumes (a callee f_base for the
    #: innermost frame of an inlined guard; the caller f_base otherwise).
    function: Function
    #: Landing point: the mapped guard point for the innermost frame, the
    #: instruction *after* the call site for enclosing frames.
    target: ProgramPoint
    #: Compensation code in this frame's own namespace.
    compensation: CompensationCode
    #: Optimized register name → frame-local name (``None`` = identity,
    #: i.e. the frame lives in the caller's namespace).
    inverse_rename: Optional[Dict[str, str]]
    #: Optimized block label → frame-local label (for translating the
    #: failure's arrival block on the innermost frame).
    inverse_blocks: Optional[Dict[str, str]]
    #: Register (frame-local name) to bind with the inner frame's return
    #: value before resuming; ``None`` for the innermost frame and for
    #: calls that discard their result.
    dest: Optional[str]
    #: Variables live at the landing point (frame-local names).
    live_at_target: FrozenSet[str]
    #: Registers (in *optimized* naming) the compensation reads although
    #: they are dead in the optimized code — this frame's contribution to
    #: the version's K_avail set.
    keep_alive: FrozenSet[str] = frozenset()
    #: Frame-local parameter name → argument expression (in *optimized*
    #: naming, aliases resolved) to evaluate against the failing state
    #: when the renamed parameter binding was optimized away.  SSA makes
    #: this sound: an argument expression's inputs hold their call-time
    #: values everywhere inside the inlined body.
    param_seeds: Dict[str, Expr] = field(default_factory=dict)

    def transfer(self, env: Mapping[str, int]) -> Dict[str, int]:
        """Rebuild this frame's environment from the failing guard's env."""
        if self.inverse_rename is None:
            seed = dict(env)
        else:
            seed = {
                self.inverse_rename[name]: value
                for name, value in env.items()
                if name in self.inverse_rename
            }
        for param, expr in self.param_seeds.items():
            if param not in seed:
                seed[param] = evaluate(expr, env)
        full = self.compensation.apply_to(seed)
        live = self.live_at_target
        return {name: value for name, value in full.items() if name in live}

    def translate_block(self, label: Optional[str]) -> Optional[str]:
        """Map an optimized arrival block into this frame's label space."""
        if label is None or self.inverse_blocks is None:
            return label
        return self.inverse_blocks.get(label)


@dataclass
class FrameState:
    """One materialized frame of a reconstructed virtual stack."""

    function: str
    point: ProgramPoint
    env: Dict[str, int]
    previous_block: Optional[str] = None
    dest: Optional[str] = None


@dataclass
class DeoptPlan:
    """The full deoptimization recipe for one guard point."""

    point: ProgramPoint
    #: Frames innermost-first; the last entry is always the caller f_base.
    frames: List[FramePlan] = field(default_factory=list)

    @property
    def is_multiframe(self) -> bool:
        return len(self.frames) > 1

    def inline_path(self) -> Tuple[str, ...]:
        """Callee names of the virtual stack, innermost first."""
        return tuple(plan.function.name for plan in self.frames[:-1])

    def keep_alive(self) -> FrozenSet[str]:
        """K_avail of the whole stack, in optimized naming."""
        result: FrozenSet[str] = frozenset()
        for plan in self.frames:
            result |= plan.keep_alive
        return result


def _frame_keep_alive(
    compensation: CompensationCode, rename: Optional[Dict[str, str]]
) -> FrozenSet[str]:
    if rename is None:
        return compensation.keep_alive
    return frozenset(rename.get(name, name) for name in compensation.keep_alive)


def _seed_inputs(seeds: Mapping[str, Expr]) -> FrozenSet[str]:
    """All registers the seed expressions read, in optimized naming."""
    inputs: FrozenSet[str] = frozenset()
    for expr in seeds.values():
        inputs |= free_vars(expr)
    return inputs


def _resolve_aliases(expr: Expr, aliases: Mapping[str, Expr], limit: int = 8) -> Expr:
    """Chase ``replace`` actions: rewrite an expression's replaced inputs.

    CSE and speculation substitute registers away (copy propagation,
    assume-constant); an argument expression captured at inline time may
    therefore reference registers that no longer exist in the optimized
    code.  The recorded aliases recover their values.  The iteration cap
    guards against pathological alias cycles.
    """
    for _ in range(limit):
        needed = free_vars(expr) & set(aliases)
        if not needed:
            break
        expr = substitute(expr, {name: aliases[name] for name in needed})
    return expr


def _certain_registers(pair, point: ProgramPoint) -> set:
    """Registers certainly bound in the failing state at ``point``.

    Parameters of the optimized function plus registers defined on every
    path to the guard (must-availability); live registers are included
    because liveness at a reached point implies a binding on the path
    that reached it.
    """
    return (
        set(pair.opt_view.available_at(point))
        | set(pair.optimized.params)
        | set(pair.opt_view.live_in(point))
    )


def _param_seeds(
    frame: InlinedFrame, pair, point: ProgramPoint, certain: set
) -> Dict[str, Expr]:
    """Argument expressions evaluable against the failing state at ``point``.

    A seed qualifies when every input is certainly bound when the guard
    fires.
    """
    aliases = getattr(pair.mapper, "aliases", {})
    seeds: Dict[str, Expr] = {}
    for param, arg in frame.param_args.items():
        expr = _resolve_aliases(arg, aliases)
        if free_vars(expr) <= certain:
            seeds[param] = expr
    return seeds


def _build_with_seeds(
    pair,
    point: ProgramPoint,
    source_view,
    dst_view,
    dst_point: ProgramPoint,
    mode: ReconstructionMode,
    rename: Optional[Dict[str, str]],
    seeds: Dict[str, Expr],
    certain: set,
    extra_assume: FrozenSet[str] = frozenset(),
) -> CompensationCode:
    """Build a frame compensation, exploiting aliases for stuck variables.

    When Algorithm 1 cannot rebuild a destination variable — typically a
    call result the caller's base version keeps live but CSE replaced
    everywhere — the ``replace`` actions recorded by the passes may name
    a live alias for it (the paper's Section 6.2).  The alias expression
    becomes a *seed*: the runtime evaluates it against the failing state
    and binds the variable directly, so the build is retried with the
    variable assumed defined.  ``seeds`` is extended in place.
    """
    aliases = getattr(pair.mapper, "aliases", {})
    while True:
        try:
            return build_compensation(
                source_view,
                point,
                dst_view,
                dst_point,
                mode=mode,
                assume_defined=frozenset(seeds) | extra_assume,
            )
        except CannotReconstruct as exc:
            var = exc.variable
            if var in seeds or var in extra_assume:
                raise
            opt_name = rename.get(var, var) if rename is not None else var
            resolved = _resolve_aliases(Var(opt_name), aliases)
            if isinstance(resolved, Var) and resolved.name == opt_name:
                raise  # no alias recorded: genuinely unrecoverable
            if not free_vars(resolved) <= certain:
                raise
            seeds[var] = resolved


def build_deopt_plans(
    pair,
    mode: ReconstructionMode = ReconstructionMode.AVAIL,
) -> Tuple[Dict[ProgramPoint, DeoptPlan], List[ProgramPoint]]:
    """Deoptimization plans for every guard of ``pair.optimized``.

    Returns ``(plans, uncovered)``.  A guard lands in ``uncovered`` when
    any frame of its virtual stack cannot be mapped or its environment
    cannot be rebuilt under ``mode`` — the caller must then refuse to
    install the speculative version, exactly like the single-frame
    ``guarded_backward_mapping`` contract.

    As a side effect the optimized function's ``"inline_paths"`` metadata
    is (re)stamped with each covered guard's virtual stack, which the
    execution backends attach to the :class:`~repro.ir.interp.GuardFailure`
    they raise.
    """
    mapper = pair.mapper
    frames: List[InlinedFrame] = list(getattr(mapper, "inlined_frames", []))
    callee_views: Dict[int, object] = {}

    def view_of(function: Function):
        key = id(function)
        if key not in callee_views:
            from .views import FunctionView

            callee_views[key] = FunctionView(function)
        return callee_views[key]

    plans: Dict[ProgramPoint, DeoptPlan] = {}
    uncovered: List[ProgramPoint] = []
    paths: Dict[ProgramPoint, Tuple[str, ...]] = {}

    for point in pair.guard_points():
        plan = _plan_for(pair, point, frames, mode, view_of)
        if plan is None:
            uncovered.append(point)
        else:
            plans[point] = plan
            if plan.is_multiframe:
                paths[point] = plan.inline_path()

    pair.optimized.metadata["inline_paths"] = paths
    return plans, uncovered


def _plan_for(pair, point, frames, mode, view_of) -> Optional[DeoptPlan]:
    mapper = pair.mapper
    frame_index = getattr(mapper, "block_frames", {}).get(point.block)

    chain: List[FramePlan] = []
    certain = _certain_registers(pair, point)
    try:
        if frame_index is None:
            target = mapper.corresponding_original_point(point)
            if target is None:
                return None
            seeds: Dict[str, Expr] = {}
            compensation = _build_with_seeds(
                pair,
                point,
                pair.opt_view,
                pair.base_view,
                target,
                mode,
                None,
                seeds,
                certain,
            )
            chain.append(
                FramePlan(
                    function=pair.base,
                    target=target,
                    compensation=compensation,
                    inverse_rename=None,
                    inverse_blocks=None,
                    dest=None,
                    live_at_target=pair.base_view.live_in(target),
                    keep_alive=compensation.keep_alive | _seed_inputs(seeds),
                    param_seeds=seeds,
                )
            )
            return DeoptPlan(point, chain)

        frame = frames[frame_index]
        frame_mapper = mapper.frame_mapper(frame)
        target = frame_mapper.corresponding_original_point(point)
        if target is None:
            return None
        callee_view = view_of(frame.callee)
        inverse = frame.inverse_rename()
        seeds = _param_seeds(frame, pair, point, certain)
        compensation = _build_with_seeds(
            pair,
            point,
            RenamedView(pair.opt_view, inverse),
            callee_view,
            target,
            mode,
            frame.rename,
            seeds,
            certain,
        )
        chain.append(
            FramePlan(
                function=frame.callee,
                target=target,
                compensation=compensation,
                inverse_rename=inverse,
                inverse_blocks={new: old for old, new in frame.block_map.items()},
                dest=None,
                live_at_target=callee_view.live_in(target),
                keep_alive=(
                    _frame_keep_alive(compensation, frame.rename)
                    | _seed_inputs(seeds)
                ),
                param_seeds=seeds,
            )
        )

        # Walk outward: each enclosing frame resumes just past its call.
        current = frame
        while True:
            parent_index = current.parent
            if parent_index is None:
                parent_fn = pair.base
                parent_view = pair.base_view
                original_call_uid = mapper.backward_uid.get(current.call_uid)
                parent_inverse: Optional[Dict[str, str]] = None
                parent_rename: Optional[Dict[str, str]] = None
            else:
                parent = frames[parent_index]
                parent_fn = parent.callee
                parent_view = view_of(parent_fn)
                inverse_uids = {new: old for old, new in parent.uid_map.items()}
                original_call_uid = inverse_uids.get(current.call_uid)
                parent_inverse = parent.inverse_rename()
                parent_rename = parent.rename
            if original_call_uid is None:
                return None
            located = parent_fn.find_by_uid(original_call_uid)
            if located is None:
                return None
            call_point, _ = located
            resume = ProgramPoint(call_point.block, call_point.index + 1)
            dest_local: Optional[str] = None
            if current.dest is not None:
                dest_local = (
                    current.dest
                    if parent_inverse is None
                    else parent_inverse.get(current.dest, current.dest)
                )
            if parent_inverse is None:
                source_view = pair.opt_view
                parent_seeds: Dict[str, Expr] = {}
            else:
                # An enclosing inlined frame's own parameter bindings may
                # equally have been folded away; its argument expressions
                # seed them just like the innermost frame's.
                source_view = RenamedView(pair.opt_view, parent_inverse)
                parent_seeds = _param_seeds(frames[parent_index], pair, point, certain)
            # The destination is bound by the runtime from the inner
            # frame's return value, never seeded from the failing state.
            parent_seeds.pop(dest_local, None)
            compensation = _build_with_seeds(
                pair,
                point,
                source_view,
                parent_view,
                resume,
                mode,
                parent_rename,
                parent_seeds,
                certain,
                extra_assume=(
                    frozenset({dest_local}) if dest_local else frozenset()
                ),
            )
            parent_seed_inputs = _seed_inputs(parent_seeds)
            chain.append(
                FramePlan(
                    function=parent_fn,
                    target=resume,
                    compensation=compensation,
                    inverse_rename=parent_inverse,
                    inverse_blocks=None,
                    dest=dest_local,
                    live_at_target=parent_view.live_in(resume),
                    keep_alive=(
                        _frame_keep_alive(compensation, parent_rename)
                        | parent_seed_inputs
                    ),
                    param_seeds=parent_seeds,
                )
            )
            if parent_index is None:
                return DeoptPlan(point, chain)
            current = frames[parent_index]
    except CannotReconstruct:
        return None
