"""OSRKit-style transition machinery for IR functions (Section 5.4).

The paper builds on OSRKit [13]: an OSR transition from ``f`` at point
``l`` to a variant ``f'`` is modelled as a call to a *continuation
function* ``f'_to`` that (1) receives the live state of ``f`` at ``l``,
(2) runs the compensation code in its entry block and (3) jumps to the
landing point ``l'`` inside a copy of ``f'``.  Because ``f'_to`` has a
single entry at ``l'``, unreachable blocks can be pruned, often making it
smaller than ``f'`` itself.

This module provides:

* :func:`split_block` — split a basic block at a program point so the
  landing point becomes a block head;
* :func:`make_continuation` — build ``f'_to`` from a variant, a landing
  point and a compensation code;
* :class:`OSRPoint` / :func:`insert_osr_point` — instrument a function so
  that, when a guard fires at a chosen point, the interpreter transfers
  execution to the continuation (used by the adaptive VM);
* :func:`perform_osr` — a one-call helper that runs a function up to a
  point, fires the transition and finishes in the other version, which is
  how tests and examples validate end-to-end transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..cfg.graph import ControlFlowGraph, reachable_blocks
from ..ir.function import Function, ProgramPoint
from ..ir.instructions import Jump
from ..ir.interp import ExecutionResult, Interpreter, Memory
from .compensation import CompensationCode
from .mapping import OSRMapping

__all__ = [
    "split_block",
    "make_continuation",
    "OSRPoint",
    "perform_osr",
    "ContinuationInfo",
]


def split_block(function: Function, point: ProgramPoint) -> Tuple[str, str]:
    """Split ``point.block`` so that ``point`` becomes the head of a new block.

    Returns ``(top_label, bottom_label)``.  The top block keeps the
    instructions before ``point`` and ends with a jump to the bottom
    block; the bottom block receives the remaining instructions (including
    the original terminator).  Phi nodes in *successor* blocks that named
    the original block as a predecessor are re-keyed to the bottom label,
    because that is where the branch to them now lives.
    """
    block = function.blocks[point.block]
    if point.index == 0:
        return point.block, point.block  # already a block head
    bottom_label = function.fresh_label(f"{point.block}.split")
    bottom = function.add_block(bottom_label, after=point.block)
    bottom.instructions = block.instructions[point.index:]
    block.instructions = block.instructions[: point.index]
    block.append(Jump(bottom_label))

    # Successor phis must now name the bottom block as their predecessor.
    for succ_label in bottom.successors():
        succ = function.blocks.get(succ_label)
        if succ is None:
            continue
        for phi in succ.phis():
            phi.rename_predecessor(point.block, bottom_label)
    return point.block, bottom_label


@dataclass
class ContinuationInfo:
    """The generated continuation function plus bookkeeping about it."""

    function: Function
    entry_params: List[str]
    landing_block: str
    pruned_blocks: int


def make_continuation(
    variant: Function,
    landing_point: ProgramPoint,
    compensation: CompensationCode,
    live_at_source: Sequence[str],
    *,
    name: Optional[str] = None,
) -> ContinuationInfo:
    """Build the continuation function ``f'_to``.

    ``live_at_source`` lists the registers the caller will pass (the live
    state at the OSR origin, plus any ``keep_alive`` values); they become
    the parameters of the continuation.  The entry block evaluates the
    compensation code and jumps to the landing point, which is first made
    a block head by splitting.  Blocks that become unreachable from the
    new entry are pruned.
    """
    clone, _ = variant.clone(name or f"{variant.name}.to")
    _, landing_label = split_block(clone, landing_point)

    params = list(dict.fromkeys(list(live_at_source) + sorted(compensation.keep_alive)))
    entry_label = clone.fresh_label("osr.entry")
    entry = clone.add_block(entry_label)
    for inst in compensation.to_ir_instructions():
        entry.append(inst)
    entry.append(Jump(landing_label))

    # Make the OSR entry the function entry: re-order so it comes first.
    clone._block_order.remove(entry_label)
    clone._block_order.insert(0, entry_label)
    continuation = clone
    continuation.params = params

    # Prune blocks unreachable from the new entry (the compaction the
    # paper notes can improve code quality of f'_to).
    cfg = ControlFlowGraph(continuation)
    reachable = reachable_blocks(cfg)
    pruned = 0
    for label in list(continuation.block_labels()):
        if label not in reachable:
            continuation.remove_block(label)
            pruned += 1
    # Drop phi inputs from pruned predecessors.
    cfg = ControlFlowGraph(continuation)
    for block in continuation.iter_blocks():
        preds = set(cfg.preds(block.label))
        for phi in block.phis():
            for pred in list(phi.incoming):
                if pred not in preds:
                    del phi.incoming[pred]

    return ContinuationInfo(continuation, params, landing_label, pruned)


@dataclass
class OSRPoint:
    """An instrumented OSR point: fire when the guard is met at ``location``.

    ``guard`` is evaluated on the interpreter environment at the point; a
    result of ``True`` triggers the transition.  The adaptive VM uses a
    hotness-counter guard; tests use ``lambda env: True``.
    """

    location: ProgramPoint
    mapping: OSRMapping
    source: Function
    target: Function
    guard: object = None  # Callable[[Dict[str, int]], bool]

    def should_fire(self, env: Mapping[str, int]) -> bool:
        if self.guard is None:
            return True
        return bool(self.guard(env))


def perform_osr(
    source: Function,
    target: Function,
    mapping: OSRMapping,
    source_point: ProgramPoint,
    args: Sequence[int],
    *,
    module=None,
    memory: Optional[Memory] = None,
    step_limit: int = 1_000_000,
    use_continuation: bool = True,
) -> ExecutionResult:
    """Run ``source`` until ``source_point``, fire the OSR, finish in ``target``.

    When the point is never reached, the source simply runs to completion
    and its result is returned.  With ``use_continuation=True`` the
    transition goes through a freshly generated continuation function
    (exercising :func:`make_continuation`); otherwise the interpreter
    resumes ``target`` directly at the landing point.
    """
    entry = mapping.lookup(source_point)
    if entry is None:
        raise KeyError(f"OSR mapping does not cover {source_point}")

    paused = Interpreter(module, step_limit=step_limit).run(
        source, args, memory=memory, break_at=source_point
    )
    if paused.stopped_at is None:
        return paused  # never reached the OSR point; completed normally

    landing_env = mapping.transfer(source_point, paused.env)

    if not use_continuation:
        return Interpreter(module, step_limit=step_limit).resume(
            target,
            entry.target,
            landing_env,
            memory=paused.memory,
            previous_block=paused.previous_block,
        )

    live_at_source = sorted(mapping.source_view.live_in(source_point))
    continuation = make_continuation(
        target, entry.target, entry.compensation, live_at_source
    )
    call_args = [paused.env.get(name, 0) for name in continuation.entry_params]
    return Interpreter(module, step_limit=step_limit).run(
        continuation.function, call_args, memory=paused.memory
    )
