"""Uniform program views used by the OSR machinery.

``reconstruct`` (Algorithm 1) needs only a handful of queries about a
program version: live variables at a point, available (already computed)
values at a point, the unique reaching definition of a variable and the
right-hand side of that definition when it is a pure assignment.  The
:class:`ProgramView` protocol captures exactly those queries, and two
concrete views implement it:

* :class:`FormalView` for the linear language of Sections 2–4, and
* :class:`FunctionView` for block-IR functions (Section 5 onwards).

Keeping the algorithm independent of the representation mirrors the
paper's claim that the ideas "do not depend on a specific platform or IR
representation".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..analysis.availability import AvailableValues, available_values
from ..analysis.liveness import LivenessInfo, live_variables
from ..analysis.reaching import ReachingDefinitions, reaching_definitions, PARAM_POINT
from ..formal.analysis import (
    formal_live_variables,
    formal_reaching_definitions,
)
from ..formal.program import FAssign, FIn, FormalProgram
from ..ir.expr import Expr
from ..ir.function import Function, ProgramPoint
from ..ir.instructions import Assign, Phi

__all__ = ["ProgramView", "FormalView", "FunctionView"]


class ProgramView:
    """The queries Algorithm 1 needs about one program version."""

    #: True when every variable has a single static definition (SSA); the
    #: reconstruction algorithm can then identify a register's value with
    #: its unique definition without extra reaching-definition checks.
    single_assignment: bool = False

    def points(self) -> List[Hashable]:
        """All program points of this version."""
        raise NotImplementedError

    def live_in(self, point: Hashable) -> FrozenSet[str]:
        """Variables live just before ``point`` (the paper's ``live(p, l)``)."""
        raise NotImplementedError

    def available_at(self, point: Hashable) -> FrozenSet[str]:
        """Variables whose value has certainly been computed before ``point``."""
        raise NotImplementedError

    def unique_reaching_definition(self, var: str, point: Hashable) -> Optional[Hashable]:
        """The paper's ``ud`` predicate: the unique defining point, if any."""
        raise NotImplementedError

    def assignment_at(self, point: Hashable) -> Optional[Tuple[str, Expr]]:
        """``(dest, rhs)`` when the instruction at ``point`` is a pure assignment.

        Returns ``None`` for definitions whose value cannot be recomputed
        from other registers: loads, calls, allocas, parameters and phi
        nodes with genuinely multiple incoming values.  Phi nodes whose
        incoming values are all identical (e.g. the ones LCSSA inserts)
        are treated as the assignment of that single value — the special
        case Section 5.4 calls out as crucial for ``bullet``.
        """
        raise NotImplementedError


class FormalView(ProgramView):
    """Program view over the formal linear language."""

    def __init__(self, program: FormalProgram) -> None:
        self.program = program
        self._live = formal_live_variables(program)
        self._reaching = formal_reaching_definitions(program)
        self._available = self._compute_available()

    def _compute_available(self) -> Dict[int, FrozenSet[str]]:
        """Forward must-analysis of defined-on-all-paths variables."""
        program = self.program
        n = len(program)
        universe = frozenset(program.variables())
        avail: Dict[int, FrozenSet[str]] = {point: universe for point in program.points()}
        avail[1] = frozenset()
        changed = True
        while changed:
            changed = False
            for point in program.points():
                if point == 1:
                    incoming: FrozenSet[str] = frozenset()
                else:
                    preds = program.predecessors(point)
                    if preds:
                        sets = []
                        for pred in preds:
                            inst = program[pred]
                            gen: FrozenSet[str]
                            if isinstance(inst, FAssign):
                                gen = frozenset({inst.dest})
                            elif isinstance(inst, FIn):
                                gen = frozenset(inst.variables)
                            else:
                                gen = frozenset()
                            sets.append(avail[pred] | gen)
                        incoming = frozenset.intersection(*sets)
                    else:
                        incoming = universe
                if incoming != avail[point]:
                    avail[point] = incoming
                    changed = True
        return avail

    def points(self) -> List[int]:
        return list(self.program.points())

    def live_in(self, point: int) -> FrozenSet[str]:
        return self._live.get(point, frozenset())

    def available_at(self, point: int) -> FrozenSet[str]:
        return self._available.get(point, frozenset())

    def unique_reaching_definition(self, var: str, point: int) -> Optional[int]:
        defs = sorted(d for name, d in self._reaching[point] if name == var)
        if len(defs) == 1:
            return defs[0]
        return None

    def assignment_at(self, point: int) -> Optional[Tuple[str, Expr]]:
        inst = self.program[point]
        if isinstance(inst, FAssign):
            return inst.dest, inst.expr
        return None


class FunctionView(ProgramView):
    """Program view over a block-IR function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._live: LivenessInfo = live_variables(function)
        self._reaching: ReachingDefinitions = reaching_definitions(function)
        self._available: AvailableValues = available_values(function)
        # Detect SSA lazily at construction: post-mem2reg functions are in
        # SSA form, which lets reconstruct identify values with their
        # single definitions.
        from ..ir.verify import is_ssa

        self.single_assignment = is_ssa(function)

    def points(self) -> List[ProgramPoint]:
        return self.function.program_points()

    def live_in(self, point: ProgramPoint) -> FrozenSet[str]:
        return self._live.live_in(point)

    def available_at(self, point: ProgramPoint) -> FrozenSet[str]:
        return self._available.available_at(point)

    def unique_reaching_definition(
        self, var: str, point: ProgramPoint
    ) -> Optional[ProgramPoint]:
        return self._reaching.unique_reaching_definition(var, point)

    def assignment_at(self, point: ProgramPoint) -> Optional[Tuple[str, Expr]]:
        if point == PARAM_POINT:
            return None
        inst = self.function.instruction_at(point)
        if isinstance(inst, Assign):
            return inst.dest, inst.expr
        if isinstance(inst, Phi):
            values = list(inst.incoming.values())
            if values and all(v == values[0] for v in values[1:]):
                # A phi that always evaluates to the same value (e.g. an
                # LCSSA-inserted node) is just a copy of that value.
                return inst.dest, values[0]
        return None

    @property
    def liveness(self) -> LivenessInfo:
        return self._live

    @property
    def availability(self) -> AvailableValues:
        return self._available
