"""CodeMapper: primitive-action tracking and cross-version correspondence.

Section 5.1 of the paper argues that, for LVE transformations, it is
enough to instrument optimization passes with five primitive actions —
``add``, ``delete``, ``hoist``, ``sink`` and ``replace`` — to be able to
build the program-point and variable mappings an OSR transition needs.
The :class:`CodeMapper` is the object every OSR-aware pass updates while
it mutates the optimized clone of a function (the ``OSR_CM`` object in the
paper's Figure 6 excerpt).

From the recorded actions and the uid correspondence produced by cloning,
the CodeMapper answers the two questions the OSR driver asks:

* *point correspondence*: given a point in one version, where should an
  OSR transition land in the other version?  A point maps to the location
  of the nearest following instruction in the same block that exists in
  both versions and has not been moved; deleted, inserted and hoisted/sunk
  instructions never serve as anchors, because the state realignment for
  them is exactly what the compensation code reconstructs.
* *register aliases*: ``replace`` actions record that a register of the
  optimized version was substituted by another operand, which
  ``reconstruct`` can exploit ("there is a live alias for a variable x
  that can be used in its place", Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.expr import Expr
from ..ir.function import Function, ProgramPoint
from ..ir.instructions import Instruction

__all__ = ["ActionKind", "PrimitiveAction", "CodeMapper", "NullCodeMapper", "clone_for_optimization"]


class ActionKind:
    """The five primitive actions of Section 5.1."""

    ADD = "add"
    DELETE = "delete"
    HOIST = "hoist"
    SINK = "sink"
    REPLACE = "replace"

    ALL = (ADD, DELETE, HOIST, SINK, REPLACE)


@dataclass(frozen=True)
class PrimitiveAction:
    """One recorded IR manipulation."""

    kind: str
    detail: str = ""
    uid: Optional[int] = None


class CodeMapper:
    """Tracks IR updates applied to the optimized clone of a function."""

    def __init__(
        self,
        original: Function,
        optimized: Function,
        uid_map: Dict[int, int],
    ) -> None:
        self.original = original
        self.optimized = optimized
        #: original instruction uid → cloned (optimized) instruction uid.
        self.forward_uid: Dict[int, int] = dict(uid_map)
        self.backward_uid: Dict[int, int] = {v: k for k, v in uid_map.items()}
        #: uids (in the optimized function) deleted by passes.
        self.deleted: set = set()
        #: uids (in the optimized function) created by passes.
        self.added: set = set()
        #: uids (in the optimized function) moved by hoist/sink.
        self.moved: set = set()
        #: optimized-version register → operand it was replaced with.
        self.aliases: Dict[str, Expr] = {}
        #: guard uid (optimized) → original instruction uid to deoptimize to.
        #: Guards are *added* instructions with no twin in the original
        #: version, and a branch guard has no surviving successor anchor in
        #: its block either — so speculative passes record the deopt target
        #: explicitly (see :meth:`record_guard_anchor`).
        self.guard_anchors: Dict[int, int] = {}
        self.actions: List[PrimitiveAction] = []

    # ------------------------------------------------------------------ #
    # Recording interface used by passes (mirrors the paper's OSR_CM).
    # ------------------------------------------------------------------ #
    def add_instruction(self, inst: Instruction, where: str = "") -> None:
        """Record insertion of a brand new instruction into the optimized code."""
        self.added.add(inst.uid)
        self.actions.append(PrimitiveAction(ActionKind.ADD, f"{inst} {where}".strip(), inst.uid))

    def delete_instruction(self, inst: Instruction) -> None:
        """Record deletion of an instruction from the optimized code."""
        if inst.uid in self.added:
            self.added.discard(inst.uid)
        else:
            self.deleted.add(inst.uid)
        self.actions.append(PrimitiveAction(ActionKind.DELETE, str(inst), inst.uid))

    def hoist_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        """Record that an instruction moved to an earlier location."""
        self.moved.add(inst.uid)
        self.actions.append(
            PrimitiveAction(ActionKind.HOIST, f"{inst}: {from_block} → {to_block}", inst.uid)
        )

    def sink_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        """Record that an instruction moved to a later location."""
        self.moved.add(inst.uid)
        self.actions.append(
            PrimitiveAction(ActionKind.SINK, f"{inst}: {from_block} → {to_block}", inst.uid)
        )

    def replace_all_uses_with(self, old: str, new: Expr, inst: Optional[Instruction] = None) -> None:
        """Record that uses of register ``old`` were replaced by operand ``new``."""
        self.aliases[old] = new
        detail = f"{old} → {new}" + (f" (in {inst})" if inst is not None else "")
        self.actions.append(
            PrimitiveAction(ActionKind.REPLACE, detail, inst.uid if inst else None)
        )

    def record_guard_anchor(self, guard: Instruction, anchor: Instruction) -> None:
        """Pin a guard's deoptimization target to an original instruction.

        ``anchor`` is an instruction of the optimized function that still
        has a twin in the original version (a cloned instruction —
        possibly one the speculative pass is about to delete, like the
        branch a ``guard+jmp`` pair replaces).  A failing guard
        deoptimizes to the anchor's original program point.
        """
        original_uid = self.backward_uid.get(anchor.uid)
        if original_uid is not None:
            self.guard_anchors[guard.uid] = original_uid

    # ------------------------------------------------------------------ #
    # Statistics (Tables 1 and 2).
    # ------------------------------------------------------------------ #
    def action_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in ActionKind.ALL}
        for action in self.actions:
            counts[action.kind] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Point correspondence.
    # ------------------------------------------------------------------ #
    def _uid_index(self, function: Function) -> Dict[int, ProgramPoint]:
        return {inst.uid: point for point, inst in function.instructions()}

    def corresponding_optimized_point(self, point: ProgramPoint) -> Optional[ProgramPoint]:
        """Map a point of the *original* function to the optimized function.

        Returns ``None`` when no anchor instruction survives in the block
        (e.g. the whole block became unreachable and was removed), in
        which case OSR is not supported at that point.
        """
        return self._correspond(
            point,
            source=self.original,
            target=self.optimized,
            uid_translation=self.forward_uid,
            dropped=self.deleted,
        )

    def corresponding_original_point(self, point: ProgramPoint) -> Optional[ProgramPoint]:
        """Map a point of the *optimized* function back to the original.

        Guard instructions take their explicitly recorded deoptimization
        anchor (:meth:`record_guard_anchor`); everything else uses the
        generic next-surviving-instruction correspondence.
        """
        block = self.optimized.blocks.get(point.block)
        if block is not None and point.index < len(block.instructions):
            anchor_uid = self.guard_anchors.get(block.instructions[point.index].uid)
            if anchor_uid is not None:
                located = self._uid_index(self.original).get(anchor_uid)
                if located is not None:
                    return self._skip_phi_run(self.original, located)
        return self._correspond(
            point,
            source=self.optimized,
            target=self.original,
            uid_translation=self.backward_uid,
            dropped=self.added,
        )

    def _correspond(
        self,
        point: ProgramPoint,
        *,
        source: Function,
        target: Function,
        uid_translation: Dict[int, int],
        dropped: set,
    ) -> Optional[ProgramPoint]:
        block = source.blocks.get(point.block)
        if block is None:
            return None
        target_index = self._uid_index(target)
        for index in range(point.index, len(block.instructions)):
            inst = block.instructions[index]
            if inst.uid in dropped:
                continue
            translated = uid_translation.get(inst.uid)
            if translated is None:
                continue
            if inst.uid in self.moved or translated in self.moved:
                # Hoisted/sunk instructions execute at a different position
                # in the other version; they cannot anchor a landing point.
                continue
            located = target_index.get(translated)
            if located is not None:
                return self._skip_phi_run(target, located)
        return None

    @staticmethod
    def _skip_phi_run(function: Function, point: ProgramPoint) -> ProgramPoint:
        """Move a landing point past a block's leading phi nodes.

        OSR transitions land *after* the phi run: the compensation code
        materializes the values the phis would have produced, so resuming
        in the middle of the run would re-evaluate them against an edge
        that was never taken.
        """
        from ..ir.instructions import Phi

        block = function.blocks[point.block]
        index = point.index
        while index < len(block.instructions) and isinstance(
            block.instructions[index], Phi
        ):
            index += 1
        if index == point.index:
            return point
        return ProgramPoint(point.block, index)

    def __repr__(self) -> str:
        counts = self.action_counts()
        summary = ", ".join(f"{kind}={counts[kind]}" for kind in ActionKind.ALL)
        return f"<CodeMapper @{self.original.name}: {summary}>"


class NullCodeMapper:
    """A no-op recorder, used when a pass runs outside an OSR context."""

    def add_instruction(self, inst: Instruction, where: str = "") -> None:  # noqa: D401
        pass

    def delete_instruction(self, inst: Instruction) -> None:
        pass

    def hoist_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        pass

    def sink_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        pass

    def replace_all_uses_with(self, old: str, new: Expr, inst: Optional[Instruction] = None) -> None:
        pass

    def record_guard_anchor(self, guard: Instruction, anchor: Instruction) -> None:
        pass


def clone_for_optimization(function: Function, suffix: str = ".opt") -> Tuple[Function, CodeMapper]:
    """Clone ``function`` and return the clone plus a CodeMapper linking the two.

    This is the paper's ``apply`` entry point for the IR level: passes run
    on the clone and report their actions to the returned CodeMapper; the
    original stays untouched and serves as the deoptimization target.
    """
    clone, uid_map = function.clone(function.name + suffix)
    return clone, CodeMapper(function, clone, uid_map)
