"""CodeMapper: primitive-action tracking and cross-version correspondence.

Section 5.1 of the paper argues that, for LVE transformations, it is
enough to instrument optimization passes with five primitive actions —
``add``, ``delete``, ``hoist``, ``sink`` and ``replace`` — to be able to
build the program-point and variable mappings an OSR transition needs.
The :class:`CodeMapper` is the object every OSR-aware pass updates while
it mutates the optimized clone of a function (the ``OSR_CM`` object in the
paper's Figure 6 excerpt).

From the recorded actions and the uid correspondence produced by cloning,
the CodeMapper answers the two questions the OSR driver asks:

* *point correspondence*: given a point in one version, where should an
  OSR transition land in the other version?  A point maps to the location
  of the nearest following instruction in the same block that exists in
  both versions and has not been moved; deleted, inserted and hoisted/sunk
  instructions never serve as anchors, because the state realignment for
  them is exactly what the compensation code reconstructs.
* *register aliases*: ``replace`` actions record that a register of the
  optimized version was substituted by another operand, which
  ``reconstruct`` can exploit ("there is a live alias for a variable x
  that can be used in its place", Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.expr import Expr
from ..ir.function import Function, ProgramPoint
from ..ir.instructions import Instruction

__all__ = [
    "ActionKind",
    "PrimitiveAction",
    "InlinedFrame",
    "CodeMapper",
    "NullCodeMapper",
    "clone_for_optimization",
]


class ActionKind:
    """The five primitive actions of Section 5.1."""

    ADD = "add"
    DELETE = "delete"
    HOIST = "hoist"
    SINK = "sink"
    REPLACE = "replace"

    ALL = (ADD, DELETE, HOIST, SINK, REPLACE)


@dataclass(frozen=True)
class PrimitiveAction:
    """One recorded IR manipulation."""

    kind: str
    detail: str = ""
    uid: Optional[int] = None


@dataclass
class InlinedFrame:
    """One speculatively inlined call site: the anchor of a virtual frame.

    The inlining pass splices a renamed copy of ``callee``'s body into
    the caller's optimized clone and records here everything the
    multi-frame deoptimization machinery needs to rebuild the callee's
    own frame when a guard fires inside the inlined code:

    * ``rename`` / ``uid_map`` / ``block_map`` — the injective renaming
      applied to the callee's registers, instructions and block labels;
    * ``call_uid`` — the uid of the ``call`` instruction (in the
      optimized clone) the splice replaced; its twin in the *parent*
      version locates the frame's return point;
    * ``parent`` — the enclosing frame's index for nested inlining
      (``None`` when the call site sits in straight caller code);
    * ``dest`` — the register (in optimized naming) the call's return
      value must land in when the reconstructed parent frame resumes;
    * ``param_args`` — callee parameter name → the call's argument
      expression as spelled at the site (in the enclosing context's
      naming).  When later passes fold the parameter-binding glue away,
      the deopt plan re-evaluates these expressions against the failing
      state to seed the callee frame (SSA guarantees an argument
      expression's inputs still hold their call-time values anywhere
      inside the inlined body).
    """

    index: int
    callee: Function
    dest: Optional[str]
    parent: Optional[int]
    call_uid: int
    rename: Dict[str, str]
    uid_map: Dict[int, int]
    block_map: Dict[str, str]
    param_args: Dict[str, Expr] = field(default_factory=dict)

    def inverse_rename(self) -> Dict[str, str]:
        """Optimized register name → callee register name."""
        return {new: old for old, new in self.rename.items()}


class CodeMapper:
    """Tracks IR updates applied to the optimized clone of a function."""

    def __init__(
        self,
        original: Function,
        optimized: Function,
        uid_map: Dict[int, int],
    ) -> None:
        self.original = original
        self.optimized = optimized
        #: original instruction uid → cloned (optimized) instruction uid.
        self.forward_uid: Dict[int, int] = dict(uid_map)
        self.backward_uid: Dict[int, int] = {v: k for k, v in uid_map.items()}
        #: uids (in the optimized function) deleted by passes.
        self.deleted: set = set()
        #: uids (in the optimized function) created by passes.
        self.added: set = set()
        #: uids (in the optimized function) moved by hoist/sink.
        self.moved: set = set()
        #: optimized-version register → operand it was replaced with.
        self.aliases: Dict[str, Expr] = {}
        #: guard uid (optimized) → *optimized-side* anchor instruction uid.
        #: Guards are *added* instructions with no twin in the original
        #: version, and a branch guard has no surviving successor anchor in
        #: its block either — so speculative passes record the deopt target
        #: explicitly (see :meth:`record_guard_anchor`).  The anchor is
        #: resolved to an original-version uid at query time through
        #: whichever backward uid map is asking: the caller's own map for
        #: guards in straight caller code, or an inlined frame's map for
        #: guards inside inlined callee bodies
        #: (:meth:`frame_mapper`).
        self.guard_anchors: Dict[int, int] = {}
        #: Per-site records of speculatively inlined callee bodies, in
        #: inlining order (see :class:`InlinedFrame`).  Populated by the
        #: inlining pass; consumed by the multi-frame deoptimization plan
        #: builder (:mod:`repro.core.frames`).
        self.inlined_frames: List["InlinedFrame"] = []
        #: Optimized block label → index of the inlined frame whose
        #: callee body the block belongs to.  Blocks absent from the map
        #: (including the splice continuation blocks, which hold the
        #: *parent* context's tail) belong to the caller.
        self.block_frames: Dict[str, int] = {}
        #: uid of a splice-glue instruction (argument binding, entry
        #: jump) → uid of the ``call`` the splice replaced.  A guard
        #: anchored to glue deoptimizes to the call itself: nothing of
        #: the callee has executed yet, so the base tier simply
        #: re-executes the whole call.
        self.splice_anchors: Dict[int, int] = {}
        self.actions: List[PrimitiveAction] = []

    # ------------------------------------------------------------------ #
    # Recording interface used by passes (mirrors the paper's OSR_CM).
    # ------------------------------------------------------------------ #
    def add_instruction(self, inst: Instruction, where: str = "") -> None:
        """Record insertion of a brand new instruction into the optimized code."""
        self.added.add(inst.uid)
        self.actions.append(PrimitiveAction(ActionKind.ADD, f"{inst} {where}".strip(), inst.uid))

    def delete_instruction(self, inst: Instruction) -> None:
        """Record deletion of an instruction from the optimized code."""
        if inst.uid in self.added:
            self.added.discard(inst.uid)
        else:
            self.deleted.add(inst.uid)
        self.actions.append(PrimitiveAction(ActionKind.DELETE, str(inst), inst.uid))

    def hoist_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        """Record that an instruction moved to an earlier location."""
        self.moved.add(inst.uid)
        self.actions.append(
            PrimitiveAction(ActionKind.HOIST, f"{inst}: {from_block} → {to_block}", inst.uid)
        )

    def sink_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        """Record that an instruction moved to a later location."""
        self.moved.add(inst.uid)
        self.actions.append(
            PrimitiveAction(ActionKind.SINK, f"{inst}: {from_block} → {to_block}", inst.uid)
        )

    def replace_all_uses_with(self, old: str, new: Expr, inst: Optional[Instruction] = None) -> None:
        """Record that uses of register ``old`` were replaced by operand ``new``."""
        self.aliases[old] = new
        detail = f"{old} → {new}" + (f" (in {inst})" if inst is not None else "")
        self.actions.append(
            PrimitiveAction(ActionKind.REPLACE, detail, inst.uid if inst else None)
        )

    def record_guard_anchor(self, guard: Instruction, anchor: Instruction) -> None:
        """Pin a guard's deoptimization target to an anchor instruction.

        ``anchor`` is an instruction of the optimized function that still
        has a twin in some base-tier version (a cloned caller instruction
        — possibly one the speculative pass is about to delete, like the
        branch a ``guard+jmp`` pair replaces — or the inlined copy of a
        callee instruction).  A failing guard deoptimizes to the anchor's
        program point in whichever base version the anchor translates
        into.
        """
        self.guard_anchors[guard.uid] = self.splice_anchors.get(anchor.uid, anchor.uid)

    def record_inlined_frame(self, frame: "InlinedFrame") -> None:
        """Register one speculatively inlined call site (see the pass)."""
        self.inlined_frames.append(frame)

    def frame_mapper(self, frame: "InlinedFrame") -> "CodeMapper":
        """A point-correspondence mapper from ``frame``'s callee into this clone.

        The returned mapper treats the callee's pristine f_base as the
        "original" version and the caller's optimized clone as the
        "optimized" version, linked by the uid map the inliner recorded
        when it copied the callee body.  ``moved``, ``deleted``,
        ``aliases`` and ``guard_anchors`` are *shared* with this mapper
        (uids are process-unique, so actions recorded by later passes
        against inlined instructions are visible through both), which is
        what lets :meth:`corresponding_original_point` resolve a point
        inside inlined code to the callee's own program point.
        """
        mapper = CodeMapper(frame.callee, self.optimized, frame.uid_map)
        mapper.moved = self.moved
        mapper.deleted = self.deleted
        mapper.aliases = self.aliases
        mapper.guard_anchors = self.guard_anchors
        return mapper

    # ------------------------------------------------------------------ #
    # Statistics (Tables 1 and 2).
    # ------------------------------------------------------------------ #
    def action_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in ActionKind.ALL}
        for action in self.actions:
            counts[action.kind] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Point correspondence.
    # ------------------------------------------------------------------ #
    def _uid_index(self, function: Function) -> Dict[int, ProgramPoint]:
        return {inst.uid: point for point, inst in function.instructions()}

    def corresponding_optimized_point(self, point: ProgramPoint) -> Optional[ProgramPoint]:
        """Map a point of the *original* function to the optimized function.

        Returns ``None`` when no anchor instruction survives in the block
        (e.g. the whole block became unreachable and was removed), in
        which case OSR is not supported at that point.
        """
        return self._correspond(
            point,
            source=self.original,
            target=self.optimized,
            uid_translation=self.forward_uid,
            dropped=self.deleted,
        )

    def corresponding_original_point(self, point: ProgramPoint) -> Optional[ProgramPoint]:
        """Map a point of the *optimized* function back to the original.

        Guard instructions take their explicitly recorded deoptimization
        anchor (:meth:`record_guard_anchor`); everything else uses the
        generic next-surviving-instruction correspondence.
        """
        block = self.optimized.blocks.get(point.block)
        if block is not None and point.index < len(block.instructions):
            anchor_uid = self.guard_anchors.get(block.instructions[point.index].uid)
            if anchor_uid is not None:
                original_uid = self.backward_uid.get(anchor_uid)
                if original_uid is not None:
                    located = self._uid_index(self.original).get(original_uid)
                    if located is not None:
                        return self._skip_phi_run(self.original, located)
        return self._correspond(
            point,
            source=self.optimized,
            target=self.original,
            uid_translation=self.backward_uid,
            dropped=self.added,
        )

    def _correspond(
        self,
        point: ProgramPoint,
        *,
        source: Function,
        target: Function,
        uid_translation: Dict[int, int],
        dropped: set,
    ) -> Optional[ProgramPoint]:
        block = source.blocks.get(point.block)
        if block is None:
            return None
        target_index = self._uid_index(target)
        for index in range(point.index, len(block.instructions)):
            inst = block.instructions[index]
            if inst.uid in dropped:
                continue
            translated = uid_translation.get(inst.uid)
            if translated is None:
                continue
            if inst.uid in self.moved or translated in self.moved:
                # Hoisted/sunk instructions execute at a different position
                # in the other version; they cannot anchor a landing point.
                continue
            located = target_index.get(translated)
            if located is not None:
                return self._skip_phi_run(target, located)
        return None

    @staticmethod
    def _skip_phi_run(function: Function, point: ProgramPoint) -> ProgramPoint:
        """Move a landing point past a block's leading phi nodes.

        OSR transitions land *after* the phi run: the compensation code
        materializes the values the phis would have produced, so resuming
        in the middle of the run would re-evaluate them against an edge
        that was never taken.
        """
        from ..ir.instructions import Phi

        block = function.blocks[point.block]
        index = point.index
        while index < len(block.instructions) and isinstance(
            block.instructions[index], Phi
        ):
            index += 1
        if index == point.index:
            return point
        return ProgramPoint(point.block, index)

    def __repr__(self) -> str:
        counts = self.action_counts()
        summary = ", ".join(f"{kind}={counts[kind]}" for kind in ActionKind.ALL)
        return f"<CodeMapper @{self.original.name}: {summary}>"


class NullCodeMapper:
    """A no-op recorder, used when a pass runs outside an OSR context."""

    def add_instruction(self, inst: Instruction, where: str = "") -> None:  # noqa: D401
        pass

    def delete_instruction(self, inst: Instruction) -> None:
        pass

    def hoist_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        pass

    def sink_instruction(self, inst: Instruction, from_block: str, to_block: str) -> None:
        pass

    def replace_all_uses_with(self, old: str, new: Expr, inst: Optional[Instruction] = None) -> None:
        pass

    def record_guard_anchor(self, guard: Instruction, anchor: Instruction) -> None:
        pass

    def record_inlined_frame(self, frame: InlinedFrame) -> None:
        pass


def clone_for_optimization(function: Function, suffix: str = ".opt") -> Tuple[Function, CodeMapper]:
    """Clone ``function`` and return the clone plus a CodeMapper linking the two.

    This is the paper's ``apply`` entry point for the IR level: passes run
    on the clone and report their actions to the returned CodeMapper; the
    original stays untouched and serves as the deoptimization target.
    """
    clone, uid_map = function.clone(function.name + suffix)
    return clone, CodeMapper(function, clone, uid_map)
