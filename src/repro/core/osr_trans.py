"""OSR_trans: building forward and backward OSR mappings automatically.

Two drivers are provided, matching the paper's two levels:

* :func:`osr_trans_formal` — the literal ``OSR_trans(p, T)`` of Section 4.2:
  applies an LVE rewrite rule (or rule sequence) to a formal program, then
  builds strict forward and backward OSR mappings using Algorithm 1 with
  the identity program-point mapping (Theorem 4.6).

* :class:`OSRTransDriver` — the IR-level embodiment of Section 5.4:
  clones a function, runs an OSR-aware pass pipeline on the clone while a
  :class:`~repro.core.codemapper.CodeMapper` records primitive actions,
  derives the point correspondence from the recorded actions, and builds
  per-point compensation code with ``reconstruct``.  Its output (the
  per-point feasibility classes and compensation sizes) is what Figures
  7–8 and Table 3 aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..formal.program import FormalProgram
from ..ir.function import Function, ProgramPoint
from ..ir.instructions import Guard
from ..rewrite.engine import TransformationResult, apply_rules
from ..rewrite.rule import RewriteRule
from .codemapper import CodeMapper, clone_for_optimization
from .compensation import CompensationCode
from .mapping import OSRMapping
from .reconstruct import (
    CannotReconstruct,
    OSRPointClass,
    ReconstructionMode,
    build_compensation,
    classify_point,
)
from .views import FormalView, FunctionView

__all__ = [
    "FormalOSRTransResult",
    "osr_trans_formal",
    "PointReport",
    "OSRTransDriver",
    "VersionPair",
]


# ---------------------------------------------------------------------- #
# Formal level (Section 4.2, Theorem 4.6).
# ---------------------------------------------------------------------- #


@dataclass
class FormalOSRTransResult:
    """Output of ``OSR_trans``: the transformed program plus both mappings."""

    original: FormalProgram
    transformed: FormalProgram
    forward: OSRMapping
    backward: OSRMapping
    transformation: TransformationResult

    def unsupported_forward_points(self) -> List[int]:
        """Points of the original program where no forward OSR is possible."""
        return [p for p in self.original.points() if p not in self.forward]


def osr_trans_formal(
    program: FormalProgram,
    rules: Sequence[RewriteRule],
    *,
    mode: ReconstructionMode = ReconstructionMode.LIVE,
) -> FormalOSRTransResult:
    """``OSR_trans(p, T) → (p', M_pp', M_p'p)`` for in-place LVE rules.

    The program-point mapping between ``p`` and ``p' = ⌈T⌉(p)`` is the
    identity (the rules replace instructions in place), so the mapping is
    built by invoking Algorithm 1 at every point; points where
    reconstruction fails are simply left out of the (partial) mapping.
    """
    transformation = apply_rules(program, rules)
    transformed = transformation.transformed

    source_view = FormalView(program)
    target_view = FormalView(transformed)

    forward = OSRMapping(source_view, target_view, strict=True, name="forward")
    backward = OSRMapping(target_view, source_view, strict=True, name="backward")

    for point in program.points():
        if point == 1:
            # Point 1 is the `in` boundary: execution has not started yet,
            # so it is not a meaningful OSR location (and its semantics
            # checks every declared input, including dead ones).
            continue
        try:
            code = build_compensation(source_view, point, target_view, point, mode=mode)
            forward.add(point, point, code)
        except CannotReconstruct:
            pass
        try:
            code = build_compensation(target_view, point, source_view, point, mode=mode)
            backward.add(point, point, code)
        except CannotReconstruct:
            pass

    return FormalOSRTransResult(program, transformed, forward, backward, transformation)


# ---------------------------------------------------------------------- #
# IR level (Section 5.4).
# ---------------------------------------------------------------------- #


@dataclass
class PointReport:
    """Feasibility of one OSR source point (one bar segment of Figure 7/8)."""

    source: ProgramPoint
    target: Optional[ProgramPoint]
    point_class: OSRPointClass
    compensation: Optional[CompensationCode]

    @property
    def feasible(self) -> bool:
        return self.point_class is not OSRPointClass.UNSUPPORTED and self.target is not None


@dataclass
class VersionPair:
    """A function, its optimized clone, and everything needed to hop between them."""

    base: Function
    optimized: Function
    mapper: CodeMapper
    base_view: FunctionView
    opt_view: FunctionView

    def report(self, *, deopt: bool = False) -> List[PointReport]:
        """Per-point OSR feasibility in the chosen direction.

        ``deopt=False`` analyses optimizing transitions (f_base → f_opt,
        Figure 7); ``deopt=True`` analyses deoptimizing transitions
        (f_opt → f_base, Figure 8).
        """
        reports: List[PointReport] = []
        if not deopt:
            src_fn, src_view, dst_view = self.base, self.base_view, self.opt_view
            correspond = self.mapper.corresponding_optimized_point
        else:
            src_fn, src_view, dst_view = self.optimized, self.opt_view, self.base_view
            correspond = self.mapper.corresponding_original_point

        for point in src_fn.program_points():
            target = correspond(point)
            if target is None:
                reports.append(PointReport(point, None, OSRPointClass.UNSUPPORTED, None))
                continue
            point_class, code = classify_point(src_view, point, dst_view, target)
            reports.append(PointReport(point, target, point_class, code))
        return reports

    def guard_points(self) -> List[ProgramPoint]:
        """Program points of every ``guard`` in the optimized version."""
        return [
            point
            for point, inst in self.optimized.instructions()
            if isinstance(inst, Guard)
        ]

    def guarded_backward_mapping(
        self, mode: ReconstructionMode = ReconstructionMode.AVAIL
    ) -> Tuple[OSRMapping, List[ProgramPoint]]:
        """The deoptimization mapping plus the guards it fails to cover.

        Speculation is only sound when *every* guard can deoptimize: a
        guard whose point has no backward mapping entry (no anchor, or
        compensation-code construction failed) would strand execution on
        failure.  Callers must treat a non-empty uncovered list as "do
        not install this speculative version".

        This is the *intra*-procedural contract: guards inside inlined
        code are invisible to the plain backward mapping and always land
        in the uncovered list here.  Interprocedural clients use
        :meth:`deopt_plans`, whose multi-frame plans cover them.
        """
        mapping = self._mapping(deopt=True, mode=mode)
        uncovered = [point for point in self.guard_points() if point not in mapping]
        return mapping, uncovered

    def inlined_frames(self):
        """The per-site inline records the pipeline left on the CodeMapper."""
        return list(getattr(self.mapper, "inlined_frames", []))

    def deopt_plans(self, mode: ReconstructionMode = ReconstructionMode.AVAIL):
        """Multi-frame deoptimization plans for every guard (see core.frames).

        Returns ``(plans, uncovered)`` — the interprocedural analogue of
        :meth:`guarded_backward_mapping`; also stamps the optimized
        function's ``"inline_paths"`` metadata.
        """
        from .frames import build_deopt_plans

        return build_deopt_plans(self, mode)

    def forward_mapping(self, mode: ReconstructionMode = ReconstructionMode.AVAIL) -> OSRMapping:
        """A populated OSR mapping f_base → f_opt under the given strategy."""
        return self._mapping(deopt=False, mode=mode)

    def backward_mapping(self, mode: ReconstructionMode = ReconstructionMode.AVAIL) -> OSRMapping:
        """A populated OSR mapping f_opt → f_base under the given strategy."""
        return self._mapping(deopt=True, mode=mode)

    def _mapping(self, *, deopt: bool, mode: ReconstructionMode) -> OSRMapping:
        if not deopt:
            src_view, dst_view = self.base_view, self.opt_view
            src_fn = self.base
            correspond = self.mapper.corresponding_optimized_point
            name = "fbase→fopt"
        else:
            src_view, dst_view = self.opt_view, self.base_view
            src_fn = self.optimized
            correspond = self.mapper.corresponding_original_point
            name = "fopt→fbase"
        mapping = OSRMapping(src_view, dst_view, strict=True, name=name)
        for point in src_fn.program_points():
            target = correspond(point)
            if target is None:
                continue
            try:
                code = build_compensation(src_view, point, dst_view, target, mode=mode)
            except CannotReconstruct:
                continue
            mapping.add(point, target, code)
        return mapping


class OSRTransDriver:
    """Clone-optimize-and-map driver for IR functions (the paper's ``apply``)."""

    def __init__(self, passes: Sequence) -> None:
        from ..passes.base import PassManager

        self.passes = list(passes)
        self._manager = PassManager(self.passes)

    def run(self, function: Function, *, suffix: str = ".opt") -> VersionPair:
        """Optimize a clone of ``function`` and build the version pair.

        The original function is left untouched (it is the deoptimization
        target); the clone is optimized in place while the CodeMapper
        records the primitive actions of every pass.
        """
        optimized, mapper = clone_for_optimization(function, suffix)
        self._manager.run(optimized, mapper)
        return VersionPair(
            base=function,
            optimized=optimized,
            mapper=mapper,
            base_view=FunctionView(function),
            opt_view=FunctionView(optimized),
        )
