"""The OSR framework: the paper's primary contribution.

* OSR mappings with compensation code (Definition 3.1) and their
  composition (Theorem 3.4) — :mod:`~repro.core.mapping`;
* Algorithm 1 (``reconstruct``) with the ``live`` and ``avail`` strategies
  — :mod:`~repro.core.reconstruct`;
* the ``OSR_trans`` drivers for the formal language and for IR functions
  — :mod:`~repro.core.osr_trans`;
* primitive-action tracking and cross-version correspondence
  — :mod:`~repro.core.codemapper`;
* OSRKit-style continuation functions and transition execution
  — :mod:`~repro.core.osrkit`;
* empirical live-variable bisimulation / soundness checks
  — :mod:`~repro.core.bisimulation`;
* optimized-code debugging (Section 7) — :mod:`~repro.core.debug`.
"""

from .compensation import CompensationCode
from .views import FormalView, FunctionView, ProgramView
from .reconstruct import (
    CannotReconstruct,
    OSRPointClass,
    ReconstructionMode,
    build_compensation,
    classify_point,
    reconstruct_variable,
)
from .mapping import OSRMapping, OSRMappingEntry
from .codemapper import (
    ActionKind,
    CodeMapper,
    InlinedFrame,
    NullCodeMapper,
    PrimitiveAction,
    clone_for_optimization,
)
from .frames import (
    DeoptPlan,
    FramePlan,
    FrameState,
    RenamedView,
    build_deopt_plans,
)
from .osr_trans import (
    FormalOSRTransResult,
    OSRTransDriver,
    PointReport,
    VersionPair,
    osr_trans_formal,
)
from .bisimulation import (
    check_guarded_deopt,
    check_ir_osr_transition,
    check_live_variable_bisimulation,
    check_mapping_soundness,
    check_multiframe_deopt,
    random_stores,
)
from .osrkit import (
    ContinuationInfo,
    OSRPoint,
    make_continuation,
    perform_osr,
    split_block,
)

__all__ = [
    "CompensationCode",
    "ProgramView", "FormalView", "FunctionView",
    "ReconstructionMode", "CannotReconstruct", "OSRPointClass",
    "build_compensation", "classify_point", "reconstruct_variable",
    "OSRMapping", "OSRMappingEntry",
    "ActionKind", "PrimitiveAction", "CodeMapper", "NullCodeMapper",
    "InlinedFrame", "clone_for_optimization",
    "DeoptPlan", "FramePlan", "FrameState", "RenamedView", "build_deopt_plans",
    "osr_trans_formal", "FormalOSRTransResult", "OSRTransDriver",
    "VersionPair", "PointReport",
    "check_live_variable_bisimulation", "check_mapping_soundness",
    "check_ir_osr_transition", "check_guarded_deopt",
    "check_multiframe_deopt", "random_stores",
    "split_block", "make_continuation", "ContinuationInfo", "OSRPoint",
    "perform_osr",
]
