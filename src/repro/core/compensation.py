"""Compensation code: the glue that realigns state during an OSR transition.

A compensation code ``c`` is an ordered sequence of pure assignments.  It
reads variables of the *source* environment (live variables at the OSR
origin, plus any values the ``avail`` strategy keeps alive) and computes
the variables that must be defined for execution to resume at the OSR
destination.  The paper stresses that ``c`` runs in O(1) time — it is a
straight-line program with no loops — and Table 3 reports its size; the
:meth:`CompensationCode.size` metric is exactly that |c| (number of
generated assignments).

The same object can be rendered in three forms:

* applied directly to a Python dict environment (used by the interpreter
  and the bisimulation/soundness tests),
* as a formal-language program (so mappings can be composed with
  Definition 3.3's program composition), or
* as a list of IR ``Assign`` instructions (so OSRKit can splice it into a
  continuation function's entry block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from ..formal.program import FAssign, FIn, FOut, FormalProgram
from ..ir.expr import Expr, evaluate, free_vars
from ..ir.instructions import Assign

__all__ = ["CompensationCode"]


@dataclass(frozen=True)
class CompensationCode:
    """An ordered list of ``dest = expr`` assignments.

    ``keep_alive`` records the variables the ``avail`` reconstruction
    strategy requires to be artificially kept alive at the OSR source
    (the paper's ``K_avail`` set); it is empty for ``live`` reconstructions.
    """

    assignments: Tuple[Tuple[str, Expr], ...] = ()
    keep_alive: FrozenSet[str] = frozenset()

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "CompensationCode":
        return CompensationCode()

    @staticmethod
    def of(
        assignments: Iterable[Tuple[str, Expr]],
        keep_alive: Iterable[str] = (),
    ) -> "CompensationCode":
        return CompensationCode(tuple(assignments), frozenset(keep_alive))

    def then(self, other: "CompensationCode") -> "CompensationCode":
        """Sequential composition ``self ; other`` (used by mapping composition)."""
        return CompensationCode(
            self.assignments + other.assignments,
            self.keep_alive | other.keep_alive,
        )

    # ------------------------------------------------------------------ #
    # Metrics (Table 3).
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """|c|: the number of assignments in the compensation code."""
        return len(self.assignments)

    def is_empty(self) -> bool:
        return not self.assignments

    def defined_variables(self) -> List[str]:
        return [dest for dest, _ in self.assignments]

    def input_variables(self) -> FrozenSet[str]:
        """Variables the compensation code reads from the source environment."""
        needed: set = set()
        defined: set = set()
        for dest, expr in self.assignments:
            needed |= free_vars(expr) - defined
            defined.add(dest)
        return frozenset(needed)

    # ------------------------------------------------------------------ #
    # The three renderings.
    # ------------------------------------------------------------------ #
    def apply_to(self, env: Mapping[str, int]) -> Dict[str, int]:
        """Run the compensation code on a source environment.

        Returns a *new* environment: the source bindings plus every
        variable the compensation code defines.  The caller typically
        restricts the result to the live variables of the OSR destination.
        """
        result = dict(env)
        for dest, expr in self.assignments:
            result[dest] = evaluate(expr, result)
        return result

    def to_formal_program(
        self,
        input_variables: Sequence[str],
        output_variables: Sequence[str],
    ) -> FormalProgram:
        """Render as a formal program ``in ...; assignments; out ...``."""
        instructions = [FIn(tuple(input_variables))]
        instructions.extend(FAssign(dest, expr) for dest, expr in self.assignments)
        instructions.append(FOut(tuple(output_variables)))
        return FormalProgram(instructions)

    def to_ir_instructions(self) -> List[Assign]:
        """Render as IR assignments (for a continuation function's entry block)."""
        return [Assign(dest, expr) for dest, expr in self.assignments]

    def __str__(self) -> str:
        if not self.assignments:
            return "⟨⟩"
        return "; ".join(f"{dest} := {expr}" for dest, expr in self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)
