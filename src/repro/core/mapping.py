"""OSR mappings (Definition 3.1) and their composition (Theorem 3.4).

An :class:`OSRMapping` is a (possibly partial) function from program
points of a source version to pairs ``(landing point, compensation code)``
in a destination version.  ``transfer`` performs the state side of an OSR
transition: it runs the compensation code on a source environment and
restricts the result to the variables live at the landing point, which is
exactly the store equality modulo live variables that Definition 3.1
requires.

``compose`` implements Theorem 3.4: mappings M_{p→p'} and M_{p'→p''}
compose pointwise, and their compensation codes compose sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Mapping, Optional, Tuple

from .compensation import CompensationCode
from .views import ProgramView

__all__ = ["OSRMappingEntry", "OSRMapping"]


@dataclass(frozen=True)
class OSRMappingEntry:
    """One mapped point: where to land and what glue code to run."""

    target: Hashable
    compensation: CompensationCode

    def __iter__(self) -> Iterator:
        # Allow tuple-style unpacking: ``target, code = entry``.
        yield self.target
        yield self.compensation


class OSRMapping:
    """A (partial) OSR mapping between two program versions."""

    def __init__(
        self,
        source_view: ProgramView,
        target_view: ProgramView,
        *,
        strict: bool = True,
        name: str = "",
    ) -> None:
        self.source_view = source_view
        self.target_view = target_view
        #: ``strict`` mappings relate runs started from the *same* initial
        #: store (Definition 3.1's σ̂' = σ̂); non-strict mappings arise for
        #: speculative destinations.
        self.strict = strict
        self.name = name
        self._entries: Dict[Hashable, OSRMappingEntry] = {}

    # ------------------------------------------------------------------ #
    # Population and lookup.
    # ------------------------------------------------------------------ #
    def add(
        self,
        source_point: Hashable,
        target_point: Hashable,
        compensation: CompensationCode,
    ) -> None:
        self._entries[source_point] = OSRMappingEntry(target_point, compensation)

    def lookup(self, source_point: Hashable) -> Optional[OSRMappingEntry]:
        return self._entries.get(source_point)

    def __contains__(self, source_point: Hashable) -> bool:
        return source_point in self._entries

    def __getitem__(self, source_point: Hashable) -> OSRMappingEntry:
        return self._entries[source_point]

    def domain(self) -> list:
        """Points at which an OSR transition is supported."""
        return sorted(self._entries, key=repr)

    def entries(self) -> Iterator[Tuple[Hashable, OSRMappingEntry]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # State transfer.
    # ------------------------------------------------------------------ #
    def transfer(self, source_point: Hashable, env: Mapping[str, int]) -> Dict[str, int]:
        """Compute the landing environment for an OSR fired at ``source_point``.

        Runs the compensation code on ``env`` and keeps only the variables
        live at the landing point — the ``[[c]](σ)|live(p',l')`` of
        Definition 3.1.
        """
        entry = self._entries.get(source_point)
        if entry is None:
            raise KeyError(f"OSR not supported at {source_point}")
        full = entry.compensation.apply_to(env)
        live = self.target_view.live_in(entry.target)
        return {name: value for name, value in full.items() if name in live}

    # ------------------------------------------------------------------ #
    # Composition (Theorem 3.4).
    # ------------------------------------------------------------------ #
    def compose(self, other: "OSRMapping") -> "OSRMapping":
        """``self ∘ other``: map p-points through p' into p''.

        Defined at a point ``l`` only when ``self`` maps ``l`` to some
        ``l'`` that is itself in ``other``'s domain; the compensation code
        is the sequential composition of the two codes.
        """
        composed = OSRMapping(
            self.source_view,
            other.target_view,
            strict=self.strict and other.strict,
            name=f"{self.name}∘{other.name}" if self.name or other.name else "",
        )
        for source_point, entry in self._entries.items():
            next_entry = other.lookup(entry.target)
            if next_entry is None:
                continue
            composed.add(
                source_point,
                next_entry.target,
                entry.compensation.then(next_entry.compensation),
            )
        return composed

    # ------------------------------------------------------------------ #
    # Metrics used by the evaluation harness.
    # ------------------------------------------------------------------ #
    def coverage(self) -> float:
        """Fraction of source program points at which OSR is supported."""
        total = len(self.source_view.points())
        return len(self._entries) / total if total else 0.0

    def average_compensation_size(self) -> float:
        sizes = [entry.compensation.size for entry in self._entries.values()]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def max_compensation_size(self) -> int:
        sizes = [entry.compensation.size for entry in self._entries.values()]
        return max(sizes) if sizes else 0

    def __repr__(self) -> str:
        return (
            f"<OSRMapping {self.name or 'anonymous'}: {len(self._entries)} points, "
            f"strict={self.strict}>"
        )
