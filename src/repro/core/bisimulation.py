"""Empirical live-variable bisimulation and OSR-mapping soundness checks.

The paper's correctness story has three layers, each of which gets an
executable counterpart here:

* **LVB (Definitions 4.1–4.4)** — two program versions are live-variable
  bisimilar when, run in lockstep from the same store, they agree at every
  step on the variables live in both.  For the in-place rewrite rules of
  Figure 5 the traces stay aligned point-for-point, so the check is a
  direct lockstep comparison (:func:`check_live_variable_bisimulation`).

* **Mapping soundness (Definition 3.1)** — firing an OSR at any realizable
  state and continuing in the other version must produce the same final
  output the other version would have produced on its own
  (:func:`check_mapping_soundness`).

* **IR-level transition validation (Section 6.1's "compile and run a
  sample of all feasible OSR pairs")** — :func:`check_ir_osr_transition`
  runs a function up to a point, transfers the state through a mapping and
  resumes in the other version, comparing the final result against an
  uninterrupted run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..formal.analysis import formal_live_variables
from ..formal.program import FormalProgram
from ..formal.semantics import (
    FormalAbort,
    UndefinedSemantics,
    run_formal,
    trace_formal,
)
from ..ir.function import Function, ProgramPoint
from ..ir.interp import GuardFailure, Interpreter, Memory
from .mapping import OSRMapping

__all__ = [
    "check_live_variable_bisimulation",
    "check_mapping_soundness",
    "check_ir_osr_transition",
    "check_guarded_deopt",
    "check_multiframe_deopt",
    "random_stores",
]


def random_stores(
    variables: Sequence[str],
    *,
    count: int = 10,
    seed: int = 0,
    low: int = -20,
    high: int = 20,
) -> List[Dict[str, int]]:
    """Deterministic pseudo-random input stores for empirical checks."""
    rng = random.Random(seed)
    return [
        {name: rng.randint(low, high) for name in variables} for _ in range(count)
    ]


def check_live_variable_bisimulation(
    p: FormalProgram,
    p_prime: FormalProgram,
    stores: Iterable[Mapping[str, int]],
    *,
    max_steps: int = 100_000,
) -> bool:
    """Empirical LVB check for same-length (in-place transformed) programs.

    Runs both programs from each store and compares, state by state, the
    variables live in *both* versions at the current point (the relation
    ``R_A`` of Definition 4.3).  Returns False on the first disagreement,
    including differing trace lengths or differing termination behaviour.
    """
    live_p = formal_live_variables(p)
    live_q = formal_live_variables(p_prime)
    for store in stores:
        try:
            trace_a = trace_formal(p, store, max_steps=max_steps)
        except (FormalAbort, UndefinedSemantics):
            trace_a = None
        try:
            trace_b = trace_formal(p_prime, store, max_steps=max_steps)
        except (FormalAbort, UndefinedSemantics):
            trace_b = None
        if (trace_a is None) != (trace_b is None):
            return False
        if trace_a is None or trace_b is None:
            continue
        if len(trace_a) != len(trace_b):
            return False
        for state_a, state_b in zip(trace_a, trace_b):
            if state_a.point != state_b.point:
                return False
            if state_a.point > len(p):
                continue
            common = live_p[state_a.point] & live_q[state_b.point]
            store_a = state_a.store_dict()
            store_b = state_b.store_dict()
            for name in common:
                if store_a.get(name) != store_b.get(name):
                    return False
    return True


def check_mapping_soundness(
    p: FormalProgram,
    p_prime: FormalProgram,
    mapping: OSRMapping,
    stores: Iterable[Mapping[str, int]],
    *,
    max_steps: int = 100_000,
) -> bool:
    """Empirical soundness of an OSR mapping from ``p`` to ``p_prime``.

    For every input store and every state (σ, l) in p's trace with l in
    the mapping's domain: transfer the state through the mapping and run
    ``p_prime`` from the landing point; the output must equal what
    ``p_prime`` computes on the original input store (which, for the
    semantics-preserving rules exercised in tests, also equals p's own
    output).
    """
    for store in stores:
        try:
            expected = run_formal(p_prime, store, max_steps=max_steps)
            states = trace_formal(p, store, max_steps=max_steps)
        except (FormalAbort, UndefinedSemantics):
            continue
        for state in states:
            if state.point > len(p):
                continue
            entry = mapping.lookup(state.point)
            if entry is None:
                continue
            landing_env = mapping.transfer(state.point, state.store_dict())
            try:
                actual = run_formal(
                    p_prime,
                    landing_env,
                    max_steps=max_steps,
                    start_point=entry.target,
                )
            except (FormalAbort, UndefinedSemantics):
                return False
            if actual != expected:
                return False
    return True


def check_ir_osr_transition(
    source: Function,
    target: Function,
    mapping: OSRMapping,
    source_point: ProgramPoint,
    args: Sequence[int],
    *,
    module=None,
    memory: Optional[Memory] = None,
    step_limit: int = 1_000_000,
    backend=None,
) -> bool:
    """Validate one IR-level OSR transition by actually executing it.

    Runs ``source`` with ``args`` until just before ``source_point`` would
    execute (the interpreter's ``break_at`` support pauses execution with
    the live environment and memory), transfers the environment through
    ``mapping`` and resumes ``target`` at the landing point with the same
    memory.  The final return value must match an uninterrupted run of
    ``source``.

    ``backend`` (any :class:`~repro.vm.backend.ExecutionBackend`-shaped
    object) selects the engine that executes the *landing* side — pass
    the compiled backend to validate that an OSR entry stub resumed in
    compiled code is bisimilar to an interpreter resume.  The paused
    source run always uses the interpreter (pausing needs ``break_at``).

    Returns ``True`` when the transition produced the same result, and
    also when ``source`` never reaches ``source_point`` on these arguments
    (there is nothing to validate in that case).
    """
    entry = mapping.lookup(source_point)
    if entry is None:
        raise KeyError(f"mapping does not support OSR at {source_point}")

    reference = Interpreter(module, step_limit=step_limit).run(
        source, args, memory=memory.copy() if memory is not None else None
    )

    paused = Interpreter(module, step_limit=step_limit).run(
        source,
        args,
        memory=memory.copy() if memory is not None else None,
        break_at=source_point,
    )
    if paused.stopped_at is None:
        return True  # the point is never reached on these inputs

    landing_env = mapping.transfer(source_point, paused.env)
    if backend is not None:
        resumed = backend.run_from(
            target,
            entry.target,
            landing_env,
            memory=paused.memory,
            previous_block=paused.previous_block,
        )
    else:
        resumed = Interpreter(module, step_limit=step_limit).resume(
            target,
            entry.target,
            landing_env,
            memory=paused.memory,
            previous_block=paused.previous_block,
        )
    return resumed.value == reference.value


def check_guarded_deopt(
    base: Function,
    optimized: Function,
    mapping: OSRMapping,
    args: Sequence[int],
    *,
    module=None,
    memory: Optional[Memory] = None,
    step_limit: int = 1_000_000,
    backend=None,
) -> bool:
    """Validate a guard failure → deoptimizing OSR round trip end to end.

    Runs the speculative ``optimized`` version on inputs expected to
    violate a speculated assumption.  ``backend`` selects the engine that
    executes the optimized version and the f_base landing — pass the
    compiled backend to validate that a guard failing *in compiled code*
    carries exactly the live state the deoptimization needs.  When a
    guard fails, three facts are checked — the executable reading of
    Definition 3.1 applied to the deopt point:

    1. **realizability** — the transferred environment (restricted to the
       variables live at the landing point) equals the state f_base
       itself exhibits at that point on some visit of an uninterrupted
       run: the live state at the deopt point is bisimilar to a real
       f_base state, not merely type-correct;
    2. **completeness** — the compensation code produced a value for
       every variable live at the landing point;
    3. **equivalence** — resuming f_base from the transferred state
       returns exactly what an uninterrupted f_base run returns.

    When no guard fires on these inputs, the optimized result must
    simply equal the base result (speculation held).
    """
    reference = Interpreter(module, step_limit=step_limit).run(
        base, args, memory=memory.copy() if memory is not None else None
    )
    try:
        run_memory = memory.copy() if memory is not None else None
        if backend is not None:
            speculative = backend.run(optimized, args, memory=run_memory)
        else:
            speculative = Interpreter(module, step_limit=step_limit).run(
                optimized, args, memory=run_memory
            )
        return speculative.value == reference.value
    except GuardFailure as exc:
        failure = exc  # the except-clause name is scoped to its block

    entry = mapping.lookup(failure.point)
    if entry is None:
        return False  # an uncovered guard fired: speculation was unsound
    landing_env = mapping.transfer(failure.point, failure.env)

    # (2) completeness: every variable live at the landing point is defined.
    live_at_landing = mapping.target_view.live_in(entry.target)
    if not set(live_at_landing) <= set(landing_env):
        return False

    # (1) realizability: f_base, run uninterrupted, passes through the
    # landing point in exactly this live state on some visit.
    traced = Interpreter(module, step_limit=step_limit).run(
        base,
        args,
        memory=memory.copy() if memory is not None else None,
        collect_trace=True,
        trace_filter=lambda point: point == entry.target,
    )
    realizable = any(
        all(state.env.get(name) == landing_env[name] for name in landing_env)
        for state in traced.trace
    )
    if not realizable:
        return False

    # (3) equivalence: finishing in f_base from the transferred state
    # produces the uninterrupted f_base result.
    if backend is not None:
        resumed = backend.run_from(
            base,
            entry.target,
            landing_env,
            memory=failure.memory,
            previous_block=failure.previous_block,
        )
    else:
        resumed = Interpreter(module, step_limit=step_limit).resume(
            base,
            entry.target,
            landing_env,
            memory=failure.memory,
            previous_block=failure.previous_block,
        )
    return resumed.value == reference.value


def check_multiframe_deopt(
    base: Function,
    optimized: Function,
    plans: Mapping[ProgramPoint, "DeoptPlan"],
    args: Sequence[int],
    *,
    module=None,
    memory: Optional[Memory] = None,
    step_limit: int = 1_000_000,
    backend=None,
    require_multiframe: bool = True,
) -> bool:
    """Validate a guard failure inside inlined code end to end.

    Runs the interprocedurally optimized ``optimized`` on inputs expected
    to violate a speculated assumption inside an inlined body, and checks
    the multi-frame contract of :mod:`repro.core.frames`:

    1. **coverage** — the failing guard has a deoptimization plan, and
       (with ``require_multiframe``) the plan reconstructs more than one
       frame, i.e. the guard really sat inside inlined code and the
       failure's ``inline_path`` names the same virtual stack;
    2. **completeness** — every frame's rebuilt environment defines every
       variable live at that frame's landing point (minus the call
       destination the runtime binds from the inner frame's return
       value);
    3. **equivalence** — unwinding the stack innermost-to-outermost in
       the base tier (each frame's return value bound into the enclosing
       frame's destination) produces exactly what an uninterrupted base
       run of the caller produces.

    ``backend`` selects the engine that executes the optimized version
    (the resumes always use the interpreter: multi-frame unwinding is a
    base-tier activity).  When no guard fires on these inputs, the
    optimized result must simply equal the base result.
    """
    reference = Interpreter(module, step_limit=step_limit).run(
        base, args, memory=memory.copy() if memory is not None else None
    )
    try:
        run_memory = memory.copy() if memory is not None else None
        if backend is not None:
            speculative = backend.run(optimized, args, memory=run_memory)
        else:
            speculative = Interpreter(module, step_limit=step_limit).run(
                optimized, args, memory=run_memory
            )
        return speculative.value == reference.value
    except GuardFailure as exc:
        failure = exc

    plan = plans.get(failure.point)
    if plan is None:
        return False  # an uncovered guard fired: speculation was unsound
    if require_multiframe and len(plan.frames) < 2:
        return False
    if failure.inline_path != plan.inline_path():
        return False  # the raised failure mislabels its virtual stack

    interpreter = Interpreter(module, step_limit=step_limit)
    value: Optional[int] = None
    result = None
    for index, frame in enumerate(plan.frames):
        env = frame.transfer(failure.env)
        # (2) completeness, modulo the runtime-bound destination.
        needed = set(frame.live_at_target) - ({frame.dest} if frame.dest else set())
        if not needed <= set(env):
            return False
        if frame.dest is not None:
            env[frame.dest] = value if value is not None else 0
        result = interpreter.resume(
            frame.function,
            frame.target,
            env,
            memory=failure.memory,
            previous_block=(
                frame.translate_block(failure.previous_block) if index == 0 else None
            ),
        )
        value = result.value

    # (3) equivalence with the uninterrupted base-tier run.
    return result is not None and result.value == reference.value
