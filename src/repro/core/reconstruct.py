"""Algorithm 1: automatic compensation-code generation for LVE transformations.

Given an OSR source point ``l`` in program version ``p`` and a destination
point ``l'`` in version ``p'`` (both views of :class:`ProgramView`),
``build_compensation`` produces the compensation code that assigns every
variable live at ``l'`` the value it would have had, had execution run in
``p'`` all along.  Variables live at both points need no work (the
live-variable-bisimulation hypothesis guarantees they already hold the
right value); the remaining ones are *reconstructed* by recursively
re-materializing their defining assignments, exactly as Algorithm 1 does:

1. find the unique definition of ``x`` reaching the landing point;
2. if that same definition reaches ``l'`` and ``x`` is live at both the
   source and the destination, the source value can be used directly;
3. otherwise recursively reconstruct the operands of the defining
   assignment and re-emit it;
4. give up when a variable has multiple (or no) reaching definitions, or
   is defined by an instruction whose value cannot be recomputed (loads,
   calls, parameters, multi-valued phis).

Two strategies are provided, matching the paper's §5.2:

* ``live`` — only variables live at the OSR source may be read;
* ``avail`` — values already computed at the source (available, possibly
  dead) may additionally be read; every such value is recorded in the
  returned code's ``keep_alive`` set (the paper's ``K_avail``), since the
  runtime must keep it around to support the transition.

The correspondence between variables of the two versions is by name; this
matches both the formal development (same variable names) and the IR-level
driver, which always compares a function against an optimized *clone* of
itself, where registers keep their names.
"""

from __future__ import annotations

from enum import Enum
from typing import AbstractSet, Hashable, List, Optional, Set, Tuple

from ..ir.expr import Expr, free_vars
from .compensation import CompensationCode
from .views import ProgramView

__all__ = [
    "ReconstructionMode",
    "CannotReconstruct",
    "OSRPointClass",
    "reconstruct_variable",
    "build_compensation",
    "classify_point",
]


class ReconstructionMode(str, Enum):
    """The two reconstruction strategies of Section 5.2."""

    LIVE = "live"
    AVAIL = "avail"


class CannotReconstruct(RuntimeError):
    """Raised when Algorithm 1 gives up on a variable (the paper's ``undef``)."""

    def __init__(self, variable: str, reason: str) -> None:
        self.variable = variable
        self.reason = reason
        super().__init__(f"cannot reconstruct {variable!r}: {reason}")


class OSRPointClass(str, Enum):
    """Feasibility classification of an OSR point (Figures 7 and 8)."""

    EMPTY = "empty"          # c = ⟨⟩: no compensation needed
    LIVE = "live"            # live variables at the source suffice
    AVAIL = "avail"          # needs values kept alive by the avail strategy
    UNSUPPORTED = "unsupported"  # reconstruct gives up even with avail


def _is_single_assignment(view: ProgramView) -> bool:
    """Whether the view represents an SSA program (see module docstring)."""
    return bool(getattr(view, "single_assignment", False))


def reconstruct_variable(
    var: str,
    src_view: ProgramView,
    src_point: Hashable,
    dst_view: ProgramView,
    dst_point: Hashable,
    at_point: Hashable,
    *,
    mode: ReconstructionMode,
    visited: Set[Hashable],
    keep_alive: Set[str],
    single_assignment: bool,
) -> List[Tuple[str, Expr]]:
    """Algorithm 1's ``reconstruct(x, p, l, p', l', l'_at)``.

    Returns the (possibly empty) list of assignments to emit, in
    dependency order.  Raises :class:`CannotReconstruct` when the value
    cannot be rebuilt under the requested ``mode``.
    """
    src_live = src_view.live_in(src_point)
    dst_live = dst_view.live_in(dst_point)

    def value_obtainable_from_source(name: str, defining_point: Hashable) -> bool:
        """Line 4 of Algorithm 1: can ``name`` be read directly from the source?

        Requires the definition reaching the landing point to be the one
        whose value the source holds.  In SSA that identity is automatic
        (every register has a single definition); otherwise we insist the
        same definition also uniquely reaches the OSR destination ``l'``.
        """
        if not single_assignment:
            if dst_view.unique_reaching_definition(name, dst_point) != defining_point:
                return False
            if name not in dst_live:
                return False
        if name in src_live:
            return True
        if mode is ReconstructionMode.AVAIL and name in src_view.available_at(src_point):
            keep_alive.add(name)
            return True
        return False

    # Line 1: unique reaching definition of var at the landing point.
    defining_point = dst_view.unique_reaching_definition(var, at_point)
    if defining_point is None:
        # No unique definition: fall back to reading the source value when
        # allowed, otherwise give up (the paper's `throw undef`).
        if var in src_live:
            return []
        if mode is ReconstructionMode.AVAIL and var in src_view.available_at(src_point):
            keep_alive.add(var)
            return []
        raise CannotReconstruct(var, f"no unique reaching definition at {at_point}")

    # Line 2/3: avoid revisiting a definition (work repetition / cycles).
    # The key includes the variable: sentinel definition points (notably
    # PARAM_POINT, shared by every parameter) would otherwise make the
    # first reconstructed parameter swallow all the others.
    if (defining_point, var) in visited:
        return []
    visited.add((defining_point, var))

    # Line 4: the source already holds the value.
    if value_obtainable_from_source(var, defining_point):
        return []

    # Lines 6–8: re-materialize the defining assignment.
    assignment = dst_view.assignment_at(defining_point)
    if assignment is None:
        # The definition is a load, call, parameter, alloca or an
        # irreducible phi: its value cannot be recomputed.  The avail
        # strategy may still read it from the source if it was computed
        # there (Section 5.2's liveness extension).
        if var in src_live:
            return []
        if mode is ReconstructionMode.AVAIL and var in src_view.available_at(src_point):
            keep_alive.add(var)
            return []
        raise CannotReconstruct(
            var, f"definition at {defining_point} is not a pure assignment"
        )

    dest, expr = assignment
    # Clobber hazard: re-materializing ``var``'s definition writes the
    # value it had at ``at_point``.  When ``var`` is *live* at the OSR
    # destination holding a value from a **different** (later) definition,
    # that write would clobber live state with a stale value — the
    # compensation cannot express both, so the point is unsupported.  In
    # SSA the reaching definition is unique everywhere and the condition
    # never triggers.
    if (
        not single_assignment
        and var in dst_live
        and dst_view.unique_reaching_definition(var, dst_point) != defining_point
    ):
        raise CannotReconstruct(
            var,
            f"re-materializing the definition at {defining_point} would "
            f"clobber the live value from {dst_view.unique_reaching_definition(var, dst_point)}",
        )
    code: List[Tuple[str, Expr]] = []
    for operand in sorted(free_vars(expr)):
        code.extend(
            reconstruct_variable(
                operand,
                src_view,
                src_point,
                dst_view,
                dst_point,
                defining_point,
                mode=mode,
                visited=visited,
                keep_alive=keep_alive,
                single_assignment=single_assignment,
            )
        )
    code.append((dest, expr))
    return code


def build_compensation(
    src_view: ProgramView,
    src_point: Hashable,
    dst_view: ProgramView,
    dst_point: Hashable,
    *,
    mode: ReconstructionMode = ReconstructionMode.LIVE,
    assume_defined: AbstractSet[str] = frozenset(),
) -> CompensationCode:
    """Build the compensation code for an OSR from ``src_point`` to ``dst_point``.

    Every variable live at the destination is either taken directly from
    the source environment (when live there too — the LVB guarantee) or
    reconstructed with Algorithm 1.  Raises :class:`CannotReconstruct`
    when some live destination variable cannot be handled under ``mode``.

    ``assume_defined`` names variables the *runtime* promises to bind
    before resuming, so reconstruction must neither rebuild nor fail on
    them.  The multi-frame deoptimization plan uses this for the register
    an inlined call returns into: its value comes from finishing the
    reconstructed callee frame, not from any state the failing version
    still holds.
    """
    single_assignment = _is_single_assignment(src_view) and _is_single_assignment(dst_view)
    src_live = src_view.live_in(src_point)
    dst_live = dst_view.live_in(dst_point)

    visited: Set[Hashable] = set()
    keep_alive: Set[str] = set()
    assignments: List[Tuple[str, Expr]] = []

    for var in sorted(dst_live):
        if var in assume_defined:
            continue
        if var in src_live:
            # Live at both ends: holds the same value by live-variable
            # bisimilarity; no compensation required.
            continue
        assignments.extend(
            reconstruct_variable(
                var,
                src_view,
                src_point,
                dst_view,
                dst_point,
                dst_point,
                mode=mode,
                visited=visited,
                keep_alive=keep_alive,
                single_assignment=single_assignment,
            )
        )

    return CompensationCode.of(assignments, keep_alive)


def classify_point(
    src_view: ProgramView,
    src_point: Hashable,
    dst_view: ProgramView,
    dst_point: Hashable,
) -> Tuple[OSRPointClass, Optional[CompensationCode]]:
    """Classify OSR feasibility at one point pair (the Figure 7/8 breakdown).

    Tries the ``live`` strategy first, then ``avail``; returns the class
    plus the compensation code of the cheapest successful strategy (``None``
    when unsupported).
    """
    try:
        code = build_compensation(
            src_view, src_point, dst_view, dst_point, mode=ReconstructionMode.LIVE
        )
        if code.is_empty():
            return OSRPointClass.EMPTY, code
        return OSRPointClass.LIVE, code
    except CannotReconstruct:
        pass
    try:
        code = build_compensation(
            src_view, src_point, dst_view, dst_point, mode=ReconstructionMode.AVAIL
        )
        return OSRPointClass.AVAIL, code
    except CannotReconstruct:
        return OSRPointClass.UNSUPPORTED, None
