"""Concurrent serving with background compilation.

One `Engine` can serve many threads at once.  With
``EngineConfig(compile_workers=1)`` tier-up work leaves the request
path entirely: the call that crosses the hotness threshold *submits* a
compile job and keeps running in the profiled base tier, worker threads
keep serving, and the finished optimized version (built from a merged
snapshot of every thread's profile shard) is atomically published into
the tier table — the next call simply lands in compiled code.

This script:

1. starts 4 worker threads hammering a call-heavy kernel through one
   shared engine (each thread owns its memory; the engine is the shared
   part);
2. subscribes to the typed event stream, so the tier-up published from
   the *compile worker* thread is observed live;
3. waits for background compilation, then verifies every thread
   computed the same result the tree-walking interpreter oracle does;
4. prints the event-derived statistics — exact even under concurrency.

Run with:  python examples/background_compile.py
"""

import threading

from repro.engine import Engine, EngineConfig, TierUp
from repro.ir import Interpreter
from repro.workloads import call_kernel_arguments, call_kernel_module

KERNEL = "helper_loop"
THREADS = 4
CALLS_PER_THREAD = 10


def main() -> None:
    module = call_kernel_module(KERNEL)
    args, memory = call_kernel_arguments(KERNEL, size=24)

    # The single-threaded interpreter is the differential oracle.
    oracle = Interpreter(module).run(module.get(KERNEL), args, memory=memory.copy())
    print(f"interpreter oracle: {oracle.value}")

    config = EngineConfig(
        hotness_threshold=3,
        min_samples=2,
        inline_min_calls=2,
        compile_workers=1,  # tier-up runs off the request path
    )

    # Engines are context managers: closing stops the compile pool.
    with Engine.from_module(module, config=config) as engine:
        engine.subscribe(
            lambda event: print(
                f"    [{threading.current_thread().name}] event: {event}"
            )
        )

        results = []
        barrier = threading.Barrier(THREADS)

        def worker() -> None:
            local_memory = memory.copy()  # memory is per-thread, engine shared
            barrier.wait()
            for _ in range(CALLS_PER_THREAD):
                results.append(engine.call(KERNEL, args, memory=local_memory).value)

        threads = [
            threading.Thread(target=worker, name=f"request-{index}")
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Nothing above ever stalled on the optimizer; now make sure the
        # published version is in before inspecting the steady state.
        engine.wait_for_compilation(timeout=60)

        wrong = [value for value in results if value != oracle.value]
        assert not wrong, f"{len(wrong)} results diverged from the oracle"
        print(
            f"\n{len(results)} concurrent calls, all equal to the oracle "
            f"({oracle.value})"
        )

        stats = engine.stats(KERNEL)
        tier_ups = [event for event in engine.events if isinstance(event, TierUp)]
        print(
            f"tier: {engine.function(KERNEL).tier}, "
            f"speculative={bool(stats.speculative)}, "
            f"guards={stats.guards}, inlined_frames={stats.inlined_frames}"
        )
        print(
            f"calls={stats.calls} (exact under {THREADS} threads), "
            f"tier-ups observed: {len(tier_ups)}"
        )
        assert stats.calls == THREADS * CALLS_PER_THREAD
        assert engine.function(KERNEL).tier == "optimized"


if __name__ == "__main__":
    main()
