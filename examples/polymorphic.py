"""The version multiverse: one specialized version per entry profile.

A phase-alternating caller is the worst case for a single speculative
version: each phase pins a different ``mode``, so whatever one version
assumes, the next phase violates.  The pre-multiverse engine
(``max_versions=1``) settles on a compromise; with ``max_versions > 1``
the engine clusters entry profiles, keeps one arm-pruned specialized
version per hot cluster, and dispatches every call to the best-matching
live version — the dispatched *entries* generalization of the paper's
dispatched continuations.

The example drives the ``modal_sum`` kernel (an 8-arm ``mode`` dispatch
loop) through three phases, with an event-bus subscriber printing every
version the engine adds, retires or switches to, then shows the
resulting version table and the deopt-free steady state.

Run with:  python examples/polymorphic.py
"""

from repro.engine import (
    Engine,
    EngineConfig,
    EntryDispatched,
    TierUp,
    VersionAdded,
    VersionRetired,
)
from repro.workloads import (
    polymorphic_arguments,
    polymorphic_function,
    polymorphic_phases,
)

KERNEL = "modal_sum"


def main() -> None:
    engine = Engine.from_functions(
        polymorphic_function(KERNEL),
        config=EngineConfig(hotness_threshold=3, min_samples=2, max_versions=4),
    )

    def narrate(event) -> None:
        if isinstance(event, TierUp):
            print(f"  [compile]  tier-up under key '{event.key}'")
        elif isinstance(event, VersionAdded):
            print(f"  [grow]     version '{event.key}' added ({event.versions} live)")
        elif isinstance(event, VersionRetired):
            print(f"  [retire]   version '{event.key}' evicted ({event.versions} live)")
        elif isinstance(event, EntryDispatched):
            print(f"  [dispatch] entry switched to version '{event.key}'")

    engine.subscribe(narrate)
    handle = engine.function(KERNEL)
    phases = polymorphic_phases(KERNEL)

    print(f"driving {KERNEL} through phases {list(phases)}:")
    for cycle in range(3):
        for mode in phases:
            args, memory = polymorphic_arguments(KERNEL, mode)
            for _ in range(6):
                handle.call(args, memory=memory)

    print("\nlive version table (oldest first):")
    for info in handle.versions:
        marker = "  <- dispatched" if info.dispatched else ""
        print(f"  {info.key:24s} hits={info.hits:3d}{marker}")

    stats = handle.stats
    print(
        f"\nversions={stats.versions} added={stats.versions_added} "
        f"retired={stats.versions_retired} entry_dispatches={stats.entry_dispatches}"
    )
    recompiles = sum(1 for event in engine.events if isinstance(event, TierUp))
    assert recompiles <= 4, "the multiverse must reuse versions, not recompile"
    assert stats.versions >= 2, "entry clustering should have specialized"

    # The steady state: every phase dispatches to its own version and
    # nothing deoptimizes any more.
    failures_before = handle.stats.guard_failures
    for mode in phases:
        args, memory = polymorphic_arguments(KERNEL, mode)
        for _ in range(6):
            handle.call(args, memory=memory)
    assert handle.stats.guard_failures == failures_before
    print("steady state: one more full phase cycle ran with zero deopts")


if __name__ == "__main__":
    main()
