"""Warm starts: a second process serves compiled code from call one.

An adaptive runtime re-learns everything on every process start — the
profiles, the speculation decisions, the optimized code.  The artifact
store makes that state durable:

1. a *cold* engine warms a call-heavy kernel the usual way (profiled
   base-tier calls, then a tier-up with speculative inlining) and
   publishes what it learned with ``engine.save(store)``;
2. a *warm* engine is opened against the same store with
   ``Engine.open(source, store)`` — the merged profile is preloaded and
   the compiled tier re-installed before the first call, so it serves
   optimized code immediately: zero ``TierUp`` events, a
   ``VersionRestored`` event per function instead;
3. the store refuses to lie: change the source and the stale artifact
   fails loudly with a typed error instead of silently executing
   optimized code for a function that no longer exists in that shape.

Run with:  python examples/warm_start.py
"""

import tempfile
import time

from repro.engine import Engine, TierUp, VersionRestored
from repro.store import StaleArtifactError
from repro.workloads import CALL_KERNEL_SOURCES, call_kernel_arguments

KERNEL = "helper_loop"


def time_calls(engine, label, calls=6):
    worst = 0.0
    for index in range(calls):
        args, memory = call_kernel_arguments(KERNEL, size=24)
        start = time.perf_counter()
        result = engine.call(KERNEL, args, memory=memory)
        elapsed = time.perf_counter() - start
        worst = max(worst, elapsed)
        print(
            f"  [{label}] call {index + 1}: result={result.value} "
            f"tier={engine.function(KERNEL).tier} "
            f"({elapsed * 1e3:.2f} ms)"
        )
    return worst


def main() -> None:
    source = CALL_KERNEL_SOURCES[KERNEL]
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store:
        print("cold engine: profiles, tiers up, then publishes to the store")
        cold = Engine.from_source(source)
        cold_worst = time_calls(cold, "cold")
        for key in cold.save(store):
            print(f"  published {key}")

        print("\nwarm engine: opened against the store")
        warm = Engine.open(source, store)
        print(f"  restored before first call: {warm.restored_functions}")
        warm_worst = time_calls(warm, "warm")
        tier_ups = [e for e in warm.events if isinstance(e, TierUp)]
        restored = [e for e in warm.events if isinstance(e, VersionRestored)]
        info = warm.function(KERNEL).version
        print(
            f"  TierUp events: {len(tier_ups)}  "
            f"VersionRestored events: {len(restored)}"
        )
        print(
            f"  version: tier={info.tier.value} speculative={info.speculative} "
            f"inlined_frames={info.inlined_frames}"
        )
        print(
            f"  worst call: cold {cold_worst * 1e3:.2f} ms vs "
            f"warm {warm_worst * 1e3:.2f} ms"
        )

        print("\nstale artifacts are refused, never executed:")
        changed = source.replace("acc + weigh(", "acc + 1 + weigh(")
        assert changed != source
        try:
            Engine.open(changed, store)
        except StaleArtifactError as error:
            print(f"  StaleArtifactError: {error}")
        # A rolling deploy hydrates what still matches and re-warms the rest.
        rolling = Engine.open(changed, store, on_stale="skip")
        print(f"  on_stale='skip' restored only: {rolling.restored_functions}")


if __name__ == "__main__":
    main()
