"""Quickstart: make a transformation OSR-aware and hop between versions.

This walks the core API end to end:

1. compile a small MiniC function to its unoptimized SSA form (f_base);
2. optimize a clone with the OSR-aware pass pipeline, recording primitive
   actions in a CodeMapper;
3. build forward (f_base → f_opt) and backward OSR mappings with
   automatically generated compensation code (Algorithm 1);
4. actually fire an optimizing OSR in the middle of the loop and check the
   result matches an uninterrupted run.

Run with:  python examples/quickstart.py
"""

from repro.core import OSRTransDriver, ReconstructionMode, perform_osr
from repro.frontend import compile_function
from repro.ir import print_function, run_function
from repro.passes import standard_pipeline

SOURCE = """
func weighted_sum(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    var weight = n * 3 + 1;      // loop-invariant: LICM will hoist it
    var square = i * i;
    total = total + square * weight;
    i = i + 1;
  }
  return total;
}
"""


def main() -> None:
    # 1. Frontend: MiniC → alloca IR → mem2reg → f_base (SSA + debug info).
    f_base = compile_function(SOURCE, "weighted_sum")
    print("=== f_base (unoptimized SSA) ===")
    print(print_function(f_base))

    # 2. Optimize a clone while tracking the five primitive actions.
    driver = OSRTransDriver(standard_pipeline())
    pair = driver.run(f_base)
    print("\n=== f_opt (OSR-aware optimized clone) ===")
    print(print_function(pair.optimized))
    print("\nrecorded primitive actions:", pair.mapper.action_counts())

    # 3. Build OSR mappings with compensation code.
    forward = pair.forward_mapping(ReconstructionMode.AVAIL)
    backward = pair.backward_mapping(ReconstructionMode.AVAIL)
    print(f"\nforward mapping covers {len(forward)} of "
          f"{len(f_base.program_points())} f_base points")
    print(f"backward mapping covers {len(backward)} of "
          f"{len(pair.optimized.program_points())} f_opt points")
    sample_point = next(
        p for p in forward.domain() if forward[p].compensation.size > 0
    )
    entry = forward[sample_point]
    print(f"example: OSR at {sample_point} lands at {entry.target} "
          f"with compensation code [{entry.compensation}]")

    # 4. Fire the transition mid-loop and compare against a straight run.
    expected = run_function(f_base, [50]).value
    osr_result = perform_osr(
        f_base, pair.optimized, forward, sample_point, [50], use_continuation=True
    )
    print(f"\nstraight run: {expected}; run with mid-loop OSR: {osr_result.value}")
    assert osr_result.value == expected, "OSR transition changed the result!"
    print("OSR transition is transparent — results match.")


if __name__ == "__main__":
    main()
