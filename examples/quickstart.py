"""Quickstart: embed the adaptive OSR engine in four lines.

The `Engine` facade runs the whole pipeline — MiniC frontend, lowering,
mem2reg, registration — in one call, and every function of the program
tiers independently: profiled interpretation, speculative compilation
(with hot callees inlined), optimizing OSR into in-flight loops, and
guard-failure deoptimization that reconstructs the full virtual call
stack.  Every transition is published as a typed ``RuntimeEvent`` you
can subscribe to.

This walks the journey end to end:

1. ``Engine.from_source`` compiles and registers a two-function program;
2. warm calls profile, then tier the hot caller up (its callee inlined);
3. an outlier input fails a speculation guard *inside the inlined
   callee* — a multi-frame deoptimizing OSR, observed live;
4. ``FunctionHandle.stats`` shows the event-derived statistics.

Run with:  python examples/quickstart.py
"""

from repro.engine import Engine, EngineConfig
from repro.ir import Memory

SOURCE = """
func clampv(v, limit) {
  if (v > limit) { return limit; }
  return v;
}

func clamped_sum(p, n, limit) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + clampv(p[i], limit);
    i = i + 1;
  }
  return acc;
}
"""

N = 24
LIMIT = 100


def fill(values) -> Memory:
    memory = Memory()
    for offset, value in enumerate(values):
        memory.store(offset, value)
    return memory


def main() -> None:
    # 1. One call: frontend -> lowering -> mem2reg -> registration.
    config = EngineConfig(hotness_threshold=3, min_samples=2, inline_min_calls=2)
    engine = Engine.from_source(SOURCE, config=config)
    handle = engine.function("clamped_sum")

    # Observe every tier transition as a typed event, as it happens.
    engine.subscribe(lambda event: print(f"    event: {event}"))

    # 2. Warm inputs (nothing saturates): profile, tier up, inline clampv.
    warm = [v % 50 for v in range(N)]
    oracle = sum(min(v, LIMIT) for v in warm)
    print(f"warm calls (expect {oracle}):")
    for index in range(4):
        result = handle(0, N, LIMIT, memory=fill(warm))
        assert result == oracle
        print(f"  call {index + 1}: result={result} tier={handle.tier}")

    stats = handle.stats
    print(
        f"\nafter warm-up: speculative={bool(stats.speculative)} "
        f"guards={stats.guards} inlined_frames={stats.inlined_frames}"
    )

    # 3. An outlier element takes the pruned clamp path: the guard inside
    #    the *inlined* clampv fails and the runtime materializes both
    #    frames (callee at the mapped point, caller past its call site).
    outlier = list(warm)
    outlier[7] = 10_000  # saturates: clampv must return LIMIT
    expected = sum(min(v, LIMIT) for v in outlier)
    print("\noutlier call (guard inside inlined code fails):")
    result = handle(0, N, LIMIT, memory=fill(outlier))
    assert result == expected, (result, expected)
    print(f"  result={result} — correct despite mid-loop deoptimization")

    # 4. Event-derived statistics.
    stats = handle.stats
    print(
        f"\nstats: calls={stats.calls} osr_entries={stats.osr_entries} "
        f"guard_failures={stats.guard_failures} "
        f"multiframe_deopts={stats.multiframe_deopts}"
    )
    assert stats.multiframe_deopts >= 1
    print("\nthe transition log is bounded — ring buffer of "
          f"{config.event_buffer_size} events, {len(engine.events)} retained")


if __name__ == "__main__":
    main()
