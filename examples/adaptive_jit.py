"""Adaptive optimization: the engine tiers a hot loop up and back down.

This is the scenario OSR was invented for.  The engine starts every
function in the profiled base tier, and the default ``HotnessPolicy``
compiles a function once it gets hot — transferring the *currently
running* loop onto the optimized version (an optimizing OSR).  A
deoptimizing OSR transfers execution back, which is how a speculative
optimizer abandons an invalidated assumption.

The example also shows the policy seam: swapping ``NeverCompile`` in
pins the very same workload to the base tier — the mechanism consults
the policy, embedders choose the policy.

Run with:  python examples/adaptive_jit.py
"""

from repro.engine import Engine, EngineConfig, NeverCompile
from repro.ir import run_function
from repro.workloads import benchmark_arguments, benchmark_function

KERNEL = "perlbench"


def main() -> None:
    engine = Engine.from_functions(
        benchmark_function(KERNEL),
        config=EngineConfig(hotness_threshold=3),
    )
    handle = engine.function(KERNEL)
    args, memory = benchmark_arguments(KERNEL, size=48)
    expected = run_function(handle.state.base, args, memory=memory.copy()).value

    print(f"calling the {KERNEL} kernel repeatedly...")
    for call_index in range(1, 6):
        result = handle(*args, memory=memory.copy())
        stats = handle.stats
        print(
            f"  call {call_index}: result={result} tier={handle.tier} "
            f"(osr entries so far: {stats.osr_entries})"
        )
        assert result == expected

    print("\ntyped transition events observed by the engine:")
    for event in engine.events:
        print(f"  {event}")

    # Deoptimization: abandon the optimized code mid-flight and finish in
    # the unoptimized tier (e.g. because a speculative guard failed).
    points = handle.deopt_points()
    deopt_point = points[len(points) // 2]
    result = handle.deoptimize_at(deopt_point, args, memory=memory.copy())
    print(f"\ndeoptimizing OSR at {deopt_point}: result={result.value}")
    assert result.value == expected
    print("result preserved across tier-down — speculation can be undone safely.")

    # The policy seam: the same workload, pinned to the base tier.
    pinned = Engine.from_functions(
        benchmark_function(KERNEL),
        config=EngineConfig(hotness_threshold=3),
        policy=NeverCompile(),
    )
    for _ in range(5):
        assert pinned.call(KERNEL, args, memory=memory.copy()).value == expected
    assert pinned.function(KERNEL).tier == "base"
    print("\nwith NeverCompile the same five calls stay in the base tier — "
          "policies are pluggable, the mechanism is shared.")


if __name__ == "__main__":
    main()
