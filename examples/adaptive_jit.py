"""Adaptive optimization: a two-tier VM using OSR for tier-up and deoptimization.

This is the scenario OSR was invented for.  The AdaptiveRuntime starts
every function in the unoptimized tier, counts calls, and when a function
gets hot it compiles an optimized version with the OSR-aware pipeline and
transfers the *currently running* loop onto it (an optimizing OSR).  A
deoptimizing OSR transfers execution back — the mechanism a speculative
optimizer uses when an assumption is invalidated.

Run with:  python examples/adaptive_jit.py
"""

from repro.ir import run_function
from repro.vm import AdaptiveRuntime
from repro.workloads import benchmark_arguments, benchmark_function


def main() -> None:
    runtime = AdaptiveRuntime(hotness_threshold=3)
    kernel = benchmark_function("perlbench")
    runtime.register(kernel)
    args, memory = benchmark_arguments("perlbench", size=48)
    expected = run_function(kernel, args, memory=memory.copy()).value

    print("calling the perlbench kernel repeatedly...")
    for call_index in range(1, 6):
        result = runtime.call("perlbench", args, memory=memory.copy())
        stats = runtime.stats("perlbench")
        tier = "optimized" if stats["compiled"] else "base"
        print(
            f"  call {call_index}: result={result.value} tier={tier} "
            f"(osr entries so far: {stats['osr_entries']})"
        )
        assert result.value == expected

    print("\ntransition events observed by the runtime:")
    for function_name, kind, point in runtime.events:
        print(f"  {function_name}: {kind} at {point}")

    # Deoptimization: abandon the optimized code mid-flight and finish in
    # the unoptimized tier (e.g. because a speculative guard failed).
    state = runtime.functions["perlbench"]
    assert state.backward_mapping is not None
    deopt_point = state.backward_mapping.domain()[len(state.backward_mapping.domain()) // 2]
    result = runtime.deoptimize_at("perlbench", deopt_point, args, memory=memory.copy())
    print(f"\ndeoptimizing OSR at {deopt_point}: result={result.value}")
    assert result.value == expected
    print("result preserved across tier-down — speculation can be undone safely.")


if __name__ == "__main__":
    main()
