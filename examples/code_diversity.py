"""Dynamic code diversity: randomly diverting execution between program versions.

Section 1 of the paper suggests OSR "to prevent security attacks via
dynamic diversity by randomly diverting execution between different
program versions at arbitrary execution points".  This example builds two
semantically equivalent versions of a kernel (the unoptimized f_base and
the optimized f_opt), then repeatedly runs the workload while hopping back
and forth between the versions at randomly chosen mapped points — and
checks the observable result never changes.

Run with:  python examples/code_diversity.py
"""

import random

from repro.core import OSRTransDriver, ReconstructionMode
from repro.ir import Interpreter, run_function
from repro.passes import standard_pipeline
from repro.workloads import benchmark_arguments, benchmark_function


def run_with_random_hops(pair, forward, backward, args, memory, rng) -> int:
    """Run the kernel, hopping versions once at a random mapped point."""
    # Decide the direction and point of the hop.
    if rng.random() < 0.5:
        source, target, mapping = pair.base, pair.optimized, forward
    else:
        source, target, mapping = pair.optimized, pair.base, backward
    point = rng.choice(mapping.domain())

    paused = Interpreter().run(source, args, memory=memory, break_at=point)
    if paused.stopped_at is None:
        return paused.value  # the random point was never reached
    landing_env = mapping.transfer(point, paused.env)
    entry = mapping[point]
    result = Interpreter().resume(
        target,
        entry.target,
        landing_env,
        memory=paused.memory,
        previous_block=paused.previous_block,
    )
    return result.value


def main() -> None:
    rng = random.Random(2018)
    kernel = benchmark_function("sjeng")
    pair = OSRTransDriver(standard_pipeline()).run(kernel)
    forward = pair.forward_mapping(ReconstructionMode.AVAIL)
    backward = pair.backward_mapping(ReconstructionMode.AVAIL)
    print(
        f"versions ready: {len(forward)} forward hop points, "
        f"{len(backward)} backward hop points"
    )

    args, memory = benchmark_arguments("sjeng", size=32)
    expected = run_function(kernel, args, memory=memory.copy()).value

    hops = 0
    for round_index in range(20):
        value = run_with_random_hops(
            pair, forward, backward, args, memory.copy(), rng
        )
        assert value == expected, f"diversified run {round_index} diverged!"
        hops += 1
    print(f"{hops} diversified runs, all produced {expected} — "
          "execution-point diversity is observationally transparent.")


if __name__ == "__main__":
    main()
