"""Section 7 scenario: recovering source-level values when debugging optimized code.

The optimizer deletes and moves computations, so at a breakpoint the value
of a source variable may no longer be anywhere in the optimized state
("endangered" variables).  This example:

1. compiles a kernel where several locals are optimized away;
2. finds the breakpoints at which user variables are endangered;
3. uses ``reconstruct`` (live and avail strategies) to rebuild the values
   a source-level debugger should report, and prints the recoverability
   ratio plus the keep set the avail strategy relies on.

Run with:  python examples/debug_optimized_code.py
"""

from repro.core import OSRTransDriver, ReconstructionMode
from repro.core.debug import analyze_function, measure_recoverability
from repro.passes import standard_pipeline
from repro.workloads import benchmark_function

def main() -> None:
    # The bzip2-like kernel: run-length encoding with several temporaries
    # that the optimizer happily rewrites.
    f_base = benchmark_function("bzip2")
    debug = f_base.metadata["debug"]
    print(f"source variables tracked by debug info: {debug.variable_names()}")

    pair = OSRTransDriver(standard_pipeline()).run(f_base)
    print(f"optimizer actions: {pair.mapper.action_counts()}")

    analysis = analyze_function(pair, debug)
    print(f"\nbreakpoint locations analysed: {analysis.breakpoint_count}")
    print(f"locations with endangered user variables: {len(analysis.affected_points)}")

    for report in analysis.affected_points[:5]:
        print(
            f"  line {report.source_line:>3}  breakpoint {str(report.opt_point):<16}"
            f" endangered: {', '.join(report.endangered)}"
        )

    recovery = measure_recoverability(pair, debug)
    live_ratio = recovery.average_ratio(ReconstructionMode.LIVE)
    avail_ratio = recovery.average_ratio(ReconstructionMode.AVAIL)
    print(f"\nrecoverability with the live strategy : {live_ratio:.2f}")
    print(f"recoverability with the avail strategy: {avail_ratio:.2f}")
    if recovery.keep_set:
        print(f"values the debugger must preserve (keep set): {sorted(recovery.keep_set)}")
    else:
        print("no values need to be kept alive for the avail strategy")


if __name__ == "__main__":
    main()
